//! The rule catalog: what the determinism contract forbids, and where each
//! prohibition does not apply.
//!
//! Every rule is a line/token-level pattern over *sanitized* source text
//! (comments and string/char literals blanked out by [`crate::scan`]), so a
//! rule name appearing in documentation or in a string constant never
//! fires. Allowlists are path prefixes relative to the workspace root: the
//! few crates whose *job* is timing or scheduling (`mpa-obs`, `mpa-exec`,
//! `mpa-bench`) may legitimately touch wall clocks and thread identity, and
//! CLI binaries under `src/bin/` own argument/environment handling. Any
//! site outside an allowlist needs an inline waiver with a written
//! justification (see [`crate::scan`] for the waiver grammar).

/// A determinism-contract rule enforced by the scanner.
///
/// The two pseudo-rules `W1` (rejected waiver) and `W2` (unused waiver) are
/// emitted by the waiver machinery itself and are not listed here — they
/// can never be waived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Float comparisons finished with `unwrap`/`expect`: a single NaN
    /// panics the pipeline mid-phase. Use `f64::total_cmp`, which is a
    /// total order (NaN sorts last) and byte-identical to `partial_cmp`
    /// on the NaN-free data the pipeline produces.
    R1,
    /// Iterating a `HashMap`/`HashSet`: iteration order is randomized per
    /// process, so any order that escapes into output (or into float
    /// accumulation order) breaks run-to-run determinism. Iterate a
    /// `BTreeMap`/sorted keys instead, or waive genuinely
    /// order-insensitive reductions.
    R2,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in pipeline logic:
    /// timing may be *observed* (spans, benches) but must never influence
    /// results.
    R3,
    /// Thread-dependent values (`thread::current().id()`,
    /// `available_parallelism`): anything derived from them varies with
    /// `--threads`, violating the 1/2/8-thread invariance suite.
    R4,
    /// `unsafe` outside the two crates audited for it (the workspace
    /// denies `unsafe_code` everywhere; this is the backstop should that
    /// lint ever be locally overridden).
    R5,
    /// Environment reads (`env::var`) in pipeline logic: results must be a
    /// function of explicit inputs, not of ambient process state. CLI
    /// binaries own flag/environment handling.
    R6,
    /// Panic-safety: `unwrap`/`expect`/`panic!`/`unreachable!`/unchecked
    /// `[…]` indexing in a function *reachable* from a declared panic-free
    /// root (`audit_roots.txt`) — serve's request dispatch and the
    /// per-snapshot replay/render loops. Reachability, not path, decides.
    R7,
    /// Allocation-in-hot-path: `to_string`/`format!`/`Vec::new`/`clone()`
    /// in a function reachable from the `DeltaCursor`/`RenderCache`/
    /// `ReplayBuffer` inner loops the delta-native PRs de-allocated.
    R8,
    /// Lock-discipline in `crates/serve`: a `Mutex`/`RwLock` guard
    /// lexically held across an I/O call or across a second lock
    /// acquisition — the daemon's deadlock/latency hazard class.
    R9,
    /// Dead counter: an `mpa-obs` `Counter` declared in the registry but
    /// never incremented anywhere in the workspace.
    R10,
}

impl Rule {
    /// Every enforced rule, in report order.
    pub const ALL: [Rule; 10] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
        Rule::R10,
    ];

    /// True for the reachability-sensitive rules (R7–R10) that only the
    /// graph-mode audit evaluates; the flat line scan never fires them, so
    /// it must not flag their waivers as unused either.
    pub fn needs_graph(self) -> bool {
        matches!(self, Rule::R7 | Rule::R8 | Rule::R9 | Rule::R10)
    }

    /// Short id as written in findings and waivers (`"R1"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
        }
    }

    /// Human-readable slug used in reports.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::R1 => "float-total-order",
            Rule::R2 => "hash-iteration-order",
            Rule::R3 => "wall-clock-in-logic",
            Rule::R4 => "thread-dependent-value",
            Rule::R5 => "unsafe-outside-allowlist",
            Rule::R6 => "env-in-pipeline",
            Rule::R7 => "panic-in-reachable-path",
            Rule::R8 => "alloc-in-hot-path",
            Rule::R9 => "lock-across-io",
            Rule::R10 => "dead-counter",
        }
    }

    /// One-line statement of the hazard, shown next to findings.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::R1 => "float comparison unwraps partial_cmp; NaN panics — use f64::total_cmp",
            Rule::R2 => "HashMap/HashSet iteration order can escape into output",
            Rule::R3 => "wall-clock read in pipeline logic",
            Rule::R4 => "thread-dependent value in pipeline logic",
            Rule::R5 => "unsafe code outside the audited crates",
            Rule::R6 => "environment read in pipeline logic",
            Rule::R7 => "panic site reachable from a declared panic-free root",
            Rule::R8 => "allocation in a function reachable from a hot inner loop",
            Rule::R9 => "lock guard held across I/O or a second lock acquisition",
            Rule::R10 => "obs counter declared but never incremented",
        }
    }

    /// Parse a rule id from a waiver's `allow(...)` list (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            "R10" => Some(Rule::R10),
            _ => None,
        }
    }

    /// Whether the rule is suspended for the file at workspace-relative
    /// path `rel` (forward slashes). See the module docs for the rationale
    /// behind each allowlist.
    pub fn allowed_path(self, rel: &str) -> bool {
        let under = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
        match self {
            // Float order and hash order are never excusable by location.
            Rule::R1 | Rule::R2 => false,
            // obs spans, bench timing, the exec phase-timing shim and the
            // serve daemon (request latency, idle deadlines, socket
            // timeouts) are the sanctioned consumers of wall clocks.
            Rule::R3 => {
                under(&["crates/obs/", "crates/bench/", "crates/exec/", "crates/serve/"])
            }
            // Scheduling stats (exec) and their reporting (obs) are
            // quarantined by design; see DESIGN.md §9.
            Rule::R4 | Rule::R5 => under(&["crates/obs/", "crates/exec/"]),
            // CLI binaries own argument and environment handling.
            Rule::R6 => rel.contains("/bin/"),
            // The audit families are not path-gated: R7/R8 are scoped by
            // call-graph reachability, R9 by the serve crate, R10 by the
            // counter registry. `allowed_path` never suspends them.
            Rule::R7 | Rule::R8 | Rule::R9 | Rule::R10 => false,
        }
    }
}

/// True when `hay` contains `word` delimited by non-identifier characters.
pub(crate) fn contains_word(hay: &str, word: &str) -> bool {
    find_word_from(hay, word, 0).is_some()
}

/// First occurrence of `word` at or after `from` with identifier
/// boundaries on both sides.
pub(crate) fn find_word_from(hay: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(pos) = hay.get(start..).and_then(|h| h.find(word)).map(|p| p + start) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_parse() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_ascii_lowercase()), Some(r));
        }
        assert_eq!(Rule::parse("R11"), None);
        assert_eq!(Rule::parse(""), None);
    }

    #[test]
    fn allowlists_cover_the_sanctioned_crates() {
        assert!(Rule::R3.allowed_path("crates/obs/src/span.rs"));
        assert!(Rule::R3.allowed_path("crates/bench/src/pipeline_bench.rs"));
        assert!(Rule::R3.allowed_path("crates/exec/src/lib.rs"));
        assert!(Rule::R3.allowed_path("crates/serve/src/server.rs"));
        assert!(!Rule::R3.allowed_path("crates/core/src/causal.rs"));
        assert!(!Rule::R4.allowed_path("crates/serve/src/server.rs"));
        assert!(Rule::R4.allowed_path("crates/exec/src/lib.rs"));
        assert!(!Rule::R4.allowed_path("crates/bench/src/pipeline_bench.rs"));
        assert!(Rule::R6.allowed_path("crates/core/src/bin/mpa-cli.rs"));
        assert!(!Rule::R6.allowed_path("crates/exec/src/lib.rs"));
        assert!(!Rule::R1.allowed_path("crates/obs/src/span.rs"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("let x = unsafe { 1 };", "unsafe"));
        assert!(!contains_word("fn unsafe_rule() {}", "unsafe"));
        assert!(!contains_word("let unsafely = 1;", "unsafe"));
        assert_eq!(find_word_from("a in b, x in ab", "in", 5), Some(10));
    }
}
