//! The graph-mode audit: line rules R1–R6 plus the reachability-sensitive
//! families R7–R10, orchestrated over one shared parse of the workspace.
//!
//! Pipeline: read sources → sanitize once ([`SourceFile`]) → build the
//! symbol table and call graph → resolve the `audit_roots.txt` manifest →
//! BFS reachability per rule family → match patterns only inside the
//! functions each family governs → resolve waivers per file. Any manifest
//! or parse problem is a hard [`AuditError`] (binary exit 2) — a root that
//! matches nothing means the contract silently stopped being checked,
//! which is worse than a finding.

use crate::graph::{CallGraph, RootError, RootManifest};
use crate::report::{AuditStats, Report};
use crate::rules::{find_word_from, is_ident_byte, Rule};
use crate::scan::{detect, read_workspace_sources, SourceFile};
use crate::symbols::{SymbolError, SymbolTable};
use std::collections::BTreeSet;
use std::path::Path;

/// The roots manifest file name, resolved against the workspace root.
pub const ROOTS_FILE: &str = "audit_roots.txt";

/// Why a graph-mode audit could not produce a report. All variants are
/// fatal: the binary maps them to exit 2, never to a silent skip.
#[derive(Debug)]
pub enum AuditError {
    /// Workspace walk or manifest read failed.
    Io(std::io::Error),
    /// A file failed to parse at the symbol layer (unbalanced braces).
    Symbol(SymbolError),
    /// The roots manifest is malformed or names a missing function.
    Root(RootError),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(e) => write!(f, "{e}"),
            AuditError::Symbol(e) => write!(f, "{e}"),
            AuditError::Root(e) => write!(f, "{e}"),
        }
    }
}

impl From<std::io::Error> for AuditError {
    fn from(e: std::io::Error) -> Self {
        AuditError::Io(e)
    }
}

/// Run the full audit over the workspace at `root`, reading the roots
/// manifest from [`ROOTS_FILE`] next to its `Cargo.toml`.
pub fn audit_workspace(root: &Path) -> Result<Report, AuditError> {
    let sources = read_workspace_sources(root)?;
    let manifest = std::fs::read_to_string(root.join(ROOTS_FILE)).map_err(|e| {
        AuditError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", root.join(ROOTS_FILE).display()),
        ))
    })?;
    audit_source_set(&root.display().to_string(), &sources, &manifest)
}

/// Audit an explicit `(rel_path, text)` source set against a manifest
/// text. This is the seam the fixture tests use: a synthetic "workspace"
/// of a few strings exercises the same code path as the real tree.
pub fn audit_source_set(
    root_label: &str,
    sources: &[(String, String)],
    manifest: &str,
) -> Result<Report, AuditError> {
    let manifest = RootManifest::parse(manifest).map_err(AuditError::Root)?;
    let files: Vec<SourceFile> =
        sources.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    let table = SymbolTable::build(&files).map_err(AuditError::Symbol)?;
    let graph = CallGraph::build(&table);
    let reach_r7 = graph.reachable(&resolve_roots(&manifest, "R7", &table)?);
    let reach_r8 = graph.reachable(&resolve_roots(&manifest, "R8", &table)?);
    let dead = dead_counters(&files);

    let mut report = Report::new(root_label.to_string());
    report.audit = Some(AuditStats {
        fns_scanned: table.fns.iter().filter(|f| !f.is_test).count() as u64,
        edges: graph.n_edges as u64,
        reachable_r7: reach_r7.len() as u64,
        reachable_r8: reach_r8.len() as u64,
    });
    for (ix, file) in files.into_iter().enumerate() {
        let mut hits = detect(&file.rel_path, &file.code);
        audit_detect(ix, &file, &table, &reach_r7, &reach_r8, &dead, &mut hits);
        report.absorb(file.resolve(hits, true));
    }
    Ok(report)
}

/// Parse a source set to its symbol table (the call-graph test seam).
pub fn symbols_of(sources: &[(String, String)]) -> Result<SymbolTable, SymbolError> {
    let files: Vec<SourceFile> =
        sources.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    SymbolTable::build(&files)
}

/// Resolve every manifest root for `rule` to fn indices. A suffix that
/// matches no non-test workspace function is an error: the most likely
/// cause is a rename that would otherwise silently shrink the audit.
fn resolve_roots(
    manifest: &RootManifest,
    rule: &str,
    table: &SymbolTable,
) -> Result<Vec<usize>, AuditError> {
    let mut out = Vec::new();
    for suffix in manifest.for_rule(rule) {
        let hits = table.find_by_suffix(suffix);
        if hits.is_empty() {
            return Err(AuditError::Root(RootError(format!(
                "{rule} root `{suffix}` matches no workspace function"
            ))));
        }
        out.extend(hits);
    }
    Ok(out)
}

/// Match the audit families over one file, appending to the line-rule
/// hits so a single waiver pass resolves everything.
fn audit_detect(
    file_ix: usize,
    file: &SourceFile,
    table: &SymbolTable,
    reach_r7: &BTreeSet<usize>,
    reach_r8: &BTreeSet<usize>,
    dead: &[(usize, usize)],
    hits: &mut Vec<(Rule, usize)>,
) {
    let layout = &table.layouts[file_ix];
    for (lx, line) in file.code.iter().enumerate() {
        let Some(fx) = layout.owner.get(lx).copied().flatten() else {
            continue;
        };
        if table.fns[fx].is_test {
            continue;
        }
        let raw = file.raw.get(lx).map(String::as_str).unwrap_or("");
        if reach_r7.contains(&fx) && has_panic_site(line, raw, &file.rel_path) {
            hits.push((Rule::R7, lx + 1));
        }
        if reach_r8.contains(&fx) && has_hot_alloc(line) {
            hits.push((Rule::R8, lx + 1));
        }
    }
    if file.rel_path.starts_with("crates/serve/") {
        detect_lock_discipline(file, file_ix, table, hits);
    }
    for &(fx, line) in dead {
        if fx == file_ix {
            hits.push((Rule::R10, line));
        }
    }
}

/// R7 line patterns: panicking calls and unchecked indexing. `line` is the
/// sanitized text, `raw` the original (to see string literals), `rel` the
/// file path (the serve boundary is held to the strictest reading).
fn has_panic_site(line: &str, raw: &str, rel: &str) -> bool {
    if line.contains(".unwrap()") || line.contains("panic!(") || line.contains("unreachable!(") {
        return true;
    }
    if line.contains(".expect(") {
        // Outside the serve boundary, `.expect("non-empty literal")` is
        // the workspace's sanctioned invariant-assert idiom and exempt;
        // serve handles untrusted input and gets no such latitude, nor do
        // computed or empty messages anywhere.
        let documented = raw.contains(".expect(\"") && !raw.contains(".expect(\"\")");
        if rel.starts_with("crates/serve/") || !documented {
            return true;
        }
    }
    // `debug_assert…` lines are stripped from release builds — the only
    // builds the panic-freedom contract covers.
    if line.trim_start().starts_with("debug_assert") {
        return false;
    }
    // Unchecked indexing: `[` directly after an identifier byte, `)` or
    // `]` (so `&[…]` slices, `#[…]` attributes, `: [u8; 4]` types and
    // `vec![…]` stay invisible).
    let bytes = line.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'['
            && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']')
        {
            // Find the matching `]` and judge the subscript.
            let mut depth = 1u32;
            let mut j = i + 1;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let subscript = if depth == 0 { &line[i + 1..j - 1] } else { &line[i + 1..] };
            if !trivially_bounded(subscript) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Whether a subscript expression is of the locally-bounded shape the
/// audit exempts: identifiers, field accesses, integer literals, `+`/`*`
/// arithmetic, `as` casts, `..` ranges of those and nested indexing of
/// the same shape (`i`, `0`, `i * n + j`, `slot as usize`, `ids[i]`,
/// `start..end`). Everything else — map keys (`&key`), subtraction
/// (`len - 1` can underflow), call results — can take a value no local
/// bound or owning-structure invariant constrains, and is flagged.
fn trivially_bounded(subscript: &str) -> bool {
    if subscript.is_empty() {
        return false;
    }
    // `m[(i, j)]` — the workspace Matrix subscript; exempt when both
    // coordinates are plain identifiers/literals (the loop-bound idiom).
    let inner = subscript
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(subscript);
    inner.bytes().all(|b| {
        is_ident_byte(b) || matches!(b, b' ' | b'+' | b'*' | b'[' | b']' | b'.' | b',')
    })
}

/// R8 line patterns: the allocation idioms the delta-native PRs removed
/// from the inner loops.
fn has_hot_alloc(line: &str) -> bool {
    line.contains(".to_string()")
        || line.contains("format!(")
        || line.contains("Vec::new()")
        || line.contains(".clone()")
}

/// Guard-acquisition patterns. `Mutex::lock`, `RwLock::read`/`write` take
/// no arguments; the I/O methods of the same names always do, so the
/// empty-paren form is unambiguous at the token level.
const ACQUIRE: [&str; 3] = [".lock()", ".read()", ".write()"];

/// I/O calls a guard must not be held across (stream writes/reads and the
/// serve request/response helpers).
const IO_CALLS: [&str; 9] = [
    ".write_all(",
    ".flush(",
    ".read_exact(",
    ".read_to_end(",
    ".read_line(",
    ".accept(",
    "write_response(",
    "read_request(",
    ".set_read_timeout(",
];

/// R9: track let-bound guards lexically (alive until their block's brace
/// depth unwinds) and flag any I/O call or second acquisition while one
/// is held.
fn detect_lock_discipline(
    file: &SourceFile,
    file_ix: usize,
    table: &SymbolTable,
    hits: &mut Vec<(Rule, usize)>,
) {
    let layout = &table.layouts[file_ix];
    // Brace depth a held guard's scope sits at; guard dies when the depth
    // at the start of a line drops below it.
    let mut held: Vec<u32> = Vec::new();
    for (lx, line) in file.code.iter().enumerate() {
        let depth_start = if lx == 0 { 0 } else { layout.depth_end[lx - 1] };
        held.retain(|&d| depth_start >= d);
        let in_code_fn = layout.owner.get(lx).copied().flatten().is_some_and(|fx| !table.fns[fx].is_test);
        if !in_code_fn {
            continue;
        }
        let acquires = ACQUIRE.iter().any(|p| line.contains(p));
        let does_io = IO_CALLS.iter().any(|p| line.contains(p));
        if !held.is_empty() && (acquires || does_io) {
            hits.push((Rule::R9, lx + 1));
        }
        if acquires && find_word_from(line, "let", 0).is_some() {
            held.push(layout.depth_end[lx]);
        }
    }
}

/// R10: `Counter` statics never incremented (`.add(`/`.incr(`) anywhere.
/// Returns `(file index, decl line)` pairs. The increment search is
/// multiline-tolerant — `NAME` at end of line, `.add(…)` on the next —
/// because that is exactly how rustfmt breaks long counter names.
fn dead_counters(files: &[SourceFile]) -> Vec<(usize, usize)> {
    let mut decls: Vec<(String, usize, usize)> = Vec::new();
    for (fx, f) in files.iter().enumerate() {
        for (lx, line) in f.code.iter().enumerate() {
            let Some(pos) = find_word_from(line, "static", 0) else {
                continue;
            };
            let rest = line[pos + "static".len()..].trim_start();
            let name: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if name.is_empty() {
                continue;
            }
            let after = rest[name.len()..].trim_start();
            let Some(ty) = after.strip_prefix(':') else {
                continue;
            };
            let ty = ty.trim_start();
            let is_counter = ty.strip_prefix("Counter").is_some_and(|tail| {
                !tail.bytes().next().is_some_and(is_ident_byte)
            });
            if is_counter {
                decls.push((name, fx, lx + 1));
            }
        }
    }
    let mut alive: BTreeSet<String> = BTreeSet::new();
    for f in files {
        for (lx, line) in f.code.iter().enumerate() {
            for (name, _, _) in &decls {
                if alive.contains(name.as_str()) {
                    continue;
                }
                let mut from = 0;
                while let Some(pos) = find_word_from(line, name, from) {
                    from = pos + name.len();
                    let mut tail = line[from..].trim_start();
                    if tail.is_empty() {
                        tail = f.code.get(lx + 1).map(|l| l.trim_start()).unwrap_or("");
                    }
                    if tail.starts_with(".add(") || tail.starts_with(".incr(") {
                        alive.insert(name.clone());
                        break;
                    }
                }
            }
        }
    }
    decls
        .into_iter()
        .filter(|(name, _, _)| !alive.contains(name.as_str()))
        .map(|(_, fx, line)| (fx, line))
        .collect()
}
