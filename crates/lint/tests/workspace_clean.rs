//! Tier-1 enforcement: `cargo test -q` runs the same scan as the
//! `mpa-lint` binary over the whole workspace and fails on any non-waived
//! finding — reintroducing a `partial_cmp(..).unwrap()` sort, iterating a
//! `HashMap` in a pipeline crate, or deleting a waiver's justification all
//! break the build here, with the offending file:line in the message.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let report = mpa_lint::scan_workspace(&workspace_root()).expect("workspace scan");
    // Sanity: the walk actually covered the workspace (all ten pipeline
    // crates plus the facade), not an empty or wrong directory.
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}); wrong root?",
        report.files_scanned
    );
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt))
        .collect();
    assert!(
        violations.is_empty(),
        "determinism-contract violations (fix them or add a justified waiver):\n{}",
        violations.join("\n")
    );
}

#[test]
fn graph_audit_is_clean_and_covers_the_workspace() {
    let report = mpa_lint::audit_workspace(&workspace_root()).expect("workspace audit");
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt))
        .collect();
    assert!(
        violations.is_empty(),
        "audit violations (fix them or add a justified waiver):\n{}",
        violations.join("\n")
    );
    // Coverage floors: catastrophic symbol-layer regressions (a parser
    // change that drops functions or edges) fail here immediately; the CI
    // baseline gate catches gradual drift at a tighter 10% bound.
    let stats = report.audit.expect("graph mode carries audit stats");
    assert!(stats.fns_scanned >= 500, "audit shrank: {} fns scanned", stats.fns_scanned);
    assert!(stats.edges >= 1000, "audit shrank: {} call edges", stats.edges);
    assert!(stats.reachable_r7 >= 100, "R7 root cover collapsed: {}", stats.reachable_r7);
    assert!(stats.reachable_r8 > 0, "R8 root cover collapsed: {}", stats.reachable_r8);
}

#[test]
fn every_surviving_waiver_carries_a_justification() {
    let report = mpa_lint::audit_workspace(&workspace_root()).expect("workspace audit");
    for f in &report.findings {
        if f.waived {
            assert!(
                !f.justification.trim().is_empty(),
                "{}:{} waived without justification",
                f.file,
                f.line
            );
        }
    }
}

#[test]
fn json_report_is_emitted_with_counters() {
    let report = mpa_lint::scan_workspace(&workspace_root()).expect("workspace scan");
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"mpa-lint\""));
    for name in ["lint_files_scanned", "lint_hits_r1", "lint_waived_r4", "lint_violations"] {
        assert!(json.contains(name), "counter {name} missing from JSON report");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
