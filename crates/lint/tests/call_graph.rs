//! Unit suite for the symbol layer's call-graph resolution: cycles
//! terminate, cross-module path calls resolve, method and free-function
//! namespaces stay separate, the cross-crate reference filter holds, and
//! a manifest root that matches nothing is a hard error (the exit-2
//! contract), never a silent skip.

use mpa_lint::{audit_source_set, symbols_of, AuditError, CallGraph, SymbolTable};

fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files.iter().map(|(p, t)| (p.to_string(), t.to_string())).collect()
}

fn build(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
    let table = symbols_of(&sources(files)).expect("symbols");
    let graph = CallGraph::build(&table);
    (table, graph)
}

/// Index of the only fn named `name`; panics if ambiguous so tests stay
/// honest about which symbol they assert on.
fn fn_ix(table: &SymbolTable, name: &str) -> usize {
    let hits: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == name)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits.len(), 1, "fn `{name}` not unique: {hits:?}");
    hits[0]
}

/// Index of the impl method `ty::name`.
fn method_ix(table: &SymbolTable, ty: &str, name: &str) -> usize {
    let hits: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == name && f.self_ty.as_deref() == Some(ty))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits.len(), 1, "method `{ty}::{name}` not unique: {hits:?}");
    hits[0]
}

#[test]
fn mutual_recursion_terminates_and_reaches_both_fns() {
    let (table, graph) = build(&[(
        "crates/fixture/src/lib.rs",
        "pub fn ping(n: u32) -> u32 {\n    if n == 0 { 0 } else { pong(n) }\n}\n\npub fn pong(n: u32) -> u32 {\n    ping(n - 1)\n}\n",
    )]);
    let (ping, pong) = (fn_ix(&table, "ping"), fn_ix(&table, "pong"));
    let reach = graph.reachable(&[ping]);
    assert!(reach.contains(&ping) && reach.contains(&pong), "{reach:?}");
    // The cycle resolves symmetrically and the DFS does not loop.
    let reach = graph.reachable(&[pong]);
    assert!(reach.contains(&ping) && reach.contains(&pong), "{reach:?}");
}

#[test]
fn cross_module_path_calls_resolve() {
    let (table, graph) = build(&[
        (
            "crates/fixture/src/a.rs",
            "pub fn entry() -> u32 {\n    crate::b::helper() + b::helper()\n}\n",
        ),
        ("crates/fixture/src/b.rs", "pub fn helper() -> u32 {\n    7\n}\n"),
    ]);
    let (entry, helper) = (fn_ix(&table, "entry"), fn_ix(&table, "helper"));
    assert_eq!(graph.edges[entry], vec![helper]);
    assert!(graph.reachable(&[entry]).contains(&helper));
}

#[test]
fn method_and_free_fn_namespaces_stay_separate() {
    let (table, graph) = build(&[(
        "crates/fixture/src/lib.rs",
        "pub struct Engine;\n\nimpl Engine {\n    pub fn run(&self) -> u32 {\n        17\n    }\n}\n\npub fn run() -> u32 {\n    3\n}\n\npub fn drive(e: &Engine) -> u32 {\n    e.run()\n}\n\npub fn call_free() -> u32 {\n    run()\n}\n\npub fn call_typed(e: &Engine) -> u32 {\n    Engine::run(e)\n}\n",
    )]);
    let method = method_ix(&table, "Engine", "run");
    let free = {
        let hits: Vec<usize> = table
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == "run" && f.self_ty.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 1);
        hits[0]
    };
    // `.run()` goes to the method family only, `run()` to the free fn
    // only, `Engine::run(…)` to exactly the named type's method.
    assert_eq!(graph.edges[fn_ix(&table, "drive")], vec![method]);
    assert_eq!(graph.edges[fn_ix(&table, "call_free")], vec![free]);
    assert_eq!(graph.edges[fn_ix(&table, "call_typed")], vec![method]);
}

#[test]
fn foreign_type_path_calls_resolve_to_nothing() {
    let (table, graph) = build(&[(
        "crates/fixture/src/lib.rs",
        "pub fn new() -> u32 {\n    9\n}\n\npub fn fresh() -> Vec<u32> {\n    Vec::new()\n}\n",
    )]);
    // `Vec` is not a workspace type: the call must not edge into the
    // workspace's own `new`.
    assert!(graph.edges[fn_ix(&table, "fresh")].is_empty(), "{:?}", graph.edges);
}

#[test]
fn method_edges_cross_crates_only_with_a_textual_reference() {
    let one = "pub struct A;\n\nimpl A {\n    pub fn go(&self) -> u32 {\n        1\n    }\n}\n\npub fn tick(a: &A) -> u32 {\n    a.go()\n}\n";
    let two = "pub struct B;\n\nimpl B {\n    pub fn go(&self) -> u32 {\n        2\n    }\n}\n";
    // No mention of the other crate: `.go()` stays inside mpa_one.
    let (table, graph) =
        build(&[("crates/one/src/lib.rs", one), ("crates/two/src/lib.rs", two)]);
    assert_eq!(graph.edges[fn_ix(&table, "tick")], vec![method_ix(&table, "A", "go")]);
    // A `use mpa_two::…` reference opens the over-approximation back up.
    let one_with_ref = format!("use mpa_two::B;\n\n{one}");
    let (table, graph) =
        build(&[("crates/one/src/lib.rs", one_with_ref.as_str()), ("crates/two/src/lib.rs", two)]);
    let edges = &graph.edges[fn_ix(&table, "tick")];
    assert!(
        edges.contains(&method_ix(&table, "A", "go"))
            && edges.contains(&method_ix(&table, "B", "go")),
        "{edges:?}"
    );
}

#[test]
fn test_fns_neither_create_nor_receive_reachability() {
    let (table, graph) = build(&[(
        "crates/fixture/src/lib.rs",
        "pub fn root() -> u32 {\n    1\n}\n\npub fn helper() -> u32 {\n    2\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert_eq!(super::root() + super::helper(), 3);\n    }\n}\n",
    )]);
    let reach = graph.reachable(&[fn_ix(&table, "root")]);
    assert!(!reach.contains(&fn_ix(&table, "helper")), "test call created reachability");
}

#[test]
fn missing_manifest_root_is_a_hard_error() {
    let srcs = sources(&[("crates/fixture/src/lib.rs", "pub fn real() -> u32 {\n    1\n}\n")]);
    let err = audit_source_set("fixture", &srcs, "R7 nope::missing").unwrap_err();
    assert!(matches!(err, AuditError::Root(_)), "{err:?}");
    assert!(err.to_string().contains("matches no workspace function"), "{err}");
}

#[test]
fn malformed_manifest_lines_are_hard_errors() {
    let srcs = sources(&[("crates/fixture/src/lib.rs", "pub fn real() -> u32 {\n    1\n}\n")]);
    // Missing fn path.
    let err = audit_source_set("fixture", &srcs, "R7\n").unwrap_err();
    assert!(matches!(err, AuditError::Root(_)), "{err:?}");
    // Rules without reachability semantics cannot take roots.
    let err = audit_source_set("fixture", &srcs, "R9 real\n").unwrap_err();
    assert!(matches!(err, AuditError::Root(_)), "{err:?}");
    // Comments and blank lines are fine, and a resolving root passes.
    audit_source_set("fixture", &srcs, "# comment\n\nR7 real\n").expect("valid manifest");
}
