fn phase_start() -> std::time::Instant {
    // mpa-lint: allow(R3) -- fixture: timing is observed only, never folded into results
    std::time::Instant::now()
}
