use std::io::Write;
use std::sync::Mutex;

pub fn respond(stream: &mut std::net::TcpStream, state: &Mutex<u64>) {
    let guard = state.lock().expect("poisoned");
    // mpa-lint: allow(R9) -- fixture: single-byte ack; the held lock guards the stream itself
    stream.write_all(b"ok").ok();
    drop(guard);
}
