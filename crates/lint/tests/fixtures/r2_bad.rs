use std::collections::HashMap;

fn render(by_name: &HashMap<String, u64>, out: &mut String) {
    for (name, value) in by_name.iter() {
        out.push_str(name);
        out.push_str(&value.to_string());
    }
}
