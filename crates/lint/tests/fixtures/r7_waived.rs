pub fn root_entry(xs: &[u32]) -> u32 {
    deep(xs)
}

fn deep(xs: &[u32]) -> u32 {
    // mpa-lint: allow(R7) -- fixture: caller guarantees non-empty input
    xs.first().copied().unwrap()
}
