pub struct Counter(u64);

pub static REQUESTS_TOTAL: Counter = Counter(0);

pub fn touch() -> u64 {
    REQUESTS_TOTAL.0
}
