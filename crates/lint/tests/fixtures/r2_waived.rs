use std::collections::HashMap;

fn total(by_name: &HashMap<String, u64>) -> u64 {
    // mpa-lint: allow(R2) -- fixture: order-insensitive integer sum over values
    by_name.values().sum()
}
