pub fn hot_loop(keys: &[&str]) -> usize {
    let mut total = 0;
    for k in keys {
        total += widen(k);
    }
    total
}

fn widen(k: &str) -> usize {
    // mpa-lint: allow(R8) -- fixture: intern-miss path, runs once per distinct key
    k.to_string().len()
}
