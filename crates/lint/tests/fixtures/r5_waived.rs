fn first_unchecked(xs: &[u8]) -> u8 {
    // mpa-lint: allow(R5) -- fixture: bounds proven by the caller's invariant
    unsafe { *xs.get_unchecked(0) }
}
