fn worker_tag() -> String {
    // mpa-lint: allow(R4) -- fixture: diagnostic label, never part of pipeline output
    format!("{:?}", std::thread::current().id())
}
