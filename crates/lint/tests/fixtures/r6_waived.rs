fn override_from_env() -> Option<String> {
    // mpa-lint: allow(R6) -- fixture: read once at startup before any pipeline work
    std::env::var("MPA_FIXTURE").ok()
}
