pub fn root_entry(xs: &[u32]) -> u32 {
    deep(xs)
}

fn deep(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

fn not_called(xs: &[u32]) -> u32 {
    xs.len() as u32 + xs.first().copied().unwrap()
}
