fn first_unchecked(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
