// mpa-lint: allow(R5) -- fixture: nothing below actually needs this
fn five() -> u32 {
    5
}
