use std::io::Write;
use std::sync::Mutex;

pub fn respond(stream: &mut std::net::TcpStream, state: &Mutex<u64>) {
    let guard = state.lock().expect("poisoned");
    stream.write_all(b"ok").ok();
    drop(guard);
}
