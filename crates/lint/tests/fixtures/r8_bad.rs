pub fn hot_loop(keys: &[&str]) -> usize {
    let mut total = 0;
    for k in keys {
        total += widen(k);
    }
    total
}

fn widen(k: &str) -> usize {
    k.to_string().len()
}
