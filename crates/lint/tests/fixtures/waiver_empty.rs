fn phase_start() -> std::time::Instant {
    // mpa-lint: allow(R3) --
    std::time::Instant::now()
}
