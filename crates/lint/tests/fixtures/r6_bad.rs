fn override_from_env() -> Option<String> {
    std::env::var("MPA_FIXTURE").ok()
}
