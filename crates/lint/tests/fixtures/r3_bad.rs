fn phase_start() -> std::time::Instant {
    std::time::Instant::now()
}
