fn sort_scores(xs: &mut [f64]) {
    // mpa-lint: allow(R1) -- fixture: inputs are finite probabilities by construction
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
