use std::collections::BTreeMap;

fn render(by_name: &BTreeMap<String, u64>, out: &mut String) {
    for (name, value) in by_name {
        out.push_str(name);
        out.push_str(&value.to_string());
    }
    let mut xs = [0.25_f64, 0.5];
    xs.sort_by(|a, b| a.total_cmp(b));
}
