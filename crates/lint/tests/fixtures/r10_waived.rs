pub struct Counter(u64);

// mpa-lint: allow(R10) -- fixture: scraped externally by name
pub static REQUESTS_TOTAL: Counter = Counter(0);

pub fn touch() -> u64 {
    REQUESTS_TOTAL.0
}
