//! Fixture suite for the lint itself: one known-bad snippet per rule plus
//! a waived copy, asserting that each rule fires at exactly the expected
//! file:line, that valid waivers suppress (and carry their justification),
//! and that malformed waivers — empty justification, unknown rule, stale
//! waiver — are themselves rejected.

use mpa_lint::{audit_source_set, scan_source, Finding};
use std::path::Path;

fn scan_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    // Fixture paths resemble a pipeline crate so no allowlist applies.
    scan_source(&format!("crates/fixture/src/{name}"), &text).findings
}

/// The bad fixture produces exactly one finding, of `rule`, at `line`,
/// not waived; the waived fixture produces the same finding one line
/// lower (below the waiver comment), suppressed with a justification.
fn assert_rule_pair(rule: &str, bad: &str, bad_line: usize, waived: &str, waived_line: usize) {
    let findings = scan_fixture(bad);
    assert_eq!(findings.len(), 1, "{bad}: expected exactly one finding, got {findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule.as_str(), f.line, f.waived), (rule, bad_line, false), "{bad}: {f:?}");
    assert!(f.excerpt.len() > 5, "{bad}: excerpt should carry the source line");

    let findings = scan_fixture(waived);
    assert_eq!(findings.len(), 1, "{waived}: expected exactly one finding, got {findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule.as_str(), f.line, f.waived), (rule, waived_line, true), "{waived}: {f:?}");
    assert!(
        f.justification.starts_with("fixture:"),
        "{waived}: justification not carried through: {f:?}"
    );
}

#[test]
fn r1_float_total_order() {
    assert_rule_pair("R1", "r1_bad.rs", 2, "r1_waived.rs", 3);
}

#[test]
fn r2_hash_iteration_order() {
    assert_rule_pair("R2", "r2_bad.rs", 4, "r2_waived.rs", 5);
}

#[test]
fn r3_wall_clock() {
    assert_rule_pair("R3", "r3_bad.rs", 2, "r3_waived.rs", 3);
}

#[test]
fn r4_thread_identity() {
    assert_rule_pair("R4", "r4_bad.rs", 2, "r4_waived.rs", 3);
}

#[test]
fn r5_unsafe_placement() {
    assert_rule_pair("R5", "r5_bad.rs", 2, "r5_waived.rs", 3);
}

#[test]
fn r6_env_read() {
    assert_rule_pair("R6", "r6_bad.rs", 2, "r6_waived.rs", 3);
}

/// Run the graph-mode audit over a single fixture file presented at
/// `rel` (the path picks the module name and the serve-boundary rules),
/// against an inline roots manifest.
fn audit_fixture(rel: &str, name: &str, manifest: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let sources = vec![(rel.to_string(), text)];
    audit_source_set("fixture", &sources, manifest)
        .unwrap_or_else(|e| panic!("{name}: audit failed: {e}"))
        .findings
}

/// Graph-rule analogue of [`assert_rule_pair`]: the bad fixture fires
/// exactly once at `bad_line`; the waived copy fires once at
/// `waived_line`, suppressed with its justification carried through.
fn assert_audit_pair(
    rule: &str,
    rel_dir: &str,
    bad: &str,
    bad_line: usize,
    waived: &str,
    waived_line: usize,
    manifest_root: Option<&str>,
) {
    for (name, line, expect_waived) in [(bad, bad_line, false), (waived, waived_line, true)] {
        let stem = name.trim_end_matches(".rs");
        let manifest = manifest_root
            .map(|root| format!("{} {stem}::{root}", rule))
            .unwrap_or_default();
        let findings = audit_fixture(&format!("{rel_dir}/{name}"), name, &manifest);
        assert_eq!(findings.len(), 1, "{name}: expected exactly one finding, got {findings:?}");
        let f = &findings[0];
        assert_eq!(
            (f.rule.as_str(), f.line, f.waived),
            (rule, line, expect_waived),
            "{name}: {f:?}"
        );
        if expect_waived {
            assert!(
                f.justification.starts_with("fixture:"),
                "{name}: justification not carried through: {f:?}"
            );
        }
    }
}

#[test]
fn r7_panic_in_reachable_path() {
    // One finding in `deep` (reachable from the manifest root); the
    // identical unwrap in `not_called` stays silent — `len() == 1` in the
    // helper is the reachability assertion.
    assert_audit_pair(
        "R7",
        "crates/fixture/src",
        "r7_bad.rs",
        6,
        "r7_waived.rs",
        7,
        Some("root_entry"),
    );
}

#[test]
fn r8_alloc_in_hot_path() {
    assert_audit_pair(
        "R8",
        "crates/fixture/src",
        "r8_bad.rs",
        10,
        "r8_waived.rs",
        11,
        Some("hot_loop"),
    );
}

#[test]
fn r9_lock_across_io() {
    // R9 is scoped to the serve crate by path, not by manifest roots.
    assert_audit_pair("R9", "crates/serve/src", "r9_bad.rs", 6, "r9_waived.rs", 7, None);
}

#[test]
fn r9_is_scoped_to_the_serve_crate() {
    // The same guard-across-IO shape outside `crates/serve/` is not R9's
    // business (other crates hold locks by design, e.g. the obs registry).
    let findings = audit_fixture("crates/fixture/src/r9_bad.rs", "r9_bad.rs", "");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r10_dead_counter() {
    assert_audit_pair("R10", "crates/fixture/src", "r10_bad.rs", 3, "r10_waived.rs", 4, None);
}

#[test]
fn r10_incremented_counter_is_alive() {
    // Appending an increment anywhere in the source set clears the
    // finding — including the rustfmt line-broken form.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r10_bad.rs");
    let mut text = std::fs::read_to_string(&path).expect("fixture");
    text.push_str("\npub fn bump() {\n    REQUESTS_TOTAL\n        .add(1);\n}\n");
    let sources = vec![("crates/fixture/src/r10_bad.rs".to_string(), text)];
    let findings = audit_source_set("fixture", &sources, "").expect("audit").findings;
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn empty_justification_is_rejected_and_suppresses_nothing() {
    let findings = scan_fixture("waiver_empty.rs");
    assert_eq!(findings.len(), 2, "{findings:?}");
    // The waiver itself is flagged…
    let w1 = findings.iter().find(|f| f.rule == "W1").expect("rejected-waiver finding");
    assert_eq!(w1.line, 2);
    assert!(w1.excerpt.contains("justification"), "{w1:?}");
    // …and the underlying hit stays a violation.
    let r3 = findings.iter().find(|f| f.rule == "R3").expect("R3 finding");
    assert_eq!((r3.line, r3.waived), (3, false));
}

#[test]
fn unused_waiver_is_flagged() {
    let findings = scan_fixture("waiver_unused.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!((findings[0].rule.as_str(), findings[0].line), ("W2", 1));
}

#[test]
fn clean_file_produces_no_findings() {
    let findings = scan_fixture("clean.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allowlisted_paths_suspend_their_rules_only() {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r3_bad.rs"),
    )
    .expect("fixture");
    // Same content, obs-crate path: R3 is allowlisted there.
    assert!(scan_source("crates/obs/src/span.rs", &text).findings.is_empty());
    // …but a pipeline-crate path still fires.
    assert_eq!(scan_source("crates/stats/src/summary.rs", &text).findings.len(), 1);
}
