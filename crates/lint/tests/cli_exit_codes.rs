//! End-to-end assertions of the binary's exit-code contract (stated in
//! `src/main.rs`): 0 = clean scan, 1 = non-waived findings, 2 = the audit
//! itself failed (usage, unreadable workspace, bad roots manifest).
//! Each case builds a throwaway mini-workspace under the Cargo tmpdir and
//! drives the real `mpa-lint` binary against it.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpa-lint"))
}

/// Lay out `<tmp>/<name>/crates/app/src/lib.rs` (+ an optional
/// `audit_roots.txt`) and return the workspace root.
fn mini_workspace(name: &str, lib_rs: &str, roots: Option<&str>) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/app/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), lib_rs).expect("write lib.rs");
    if let Some(text) = roots {
        std::fs::write(root.join("audit_roots.txt"), text).expect("write roots");
    }
    root
}

fn run(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = bin()
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mpa-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const CLEAN: &str = "pub fn entry(xs: &[u32]) -> u32 {\n    xs.iter().sum()\n}\n";
const PANICKY: &str = "pub fn entry(xs: &[u32]) -> u32 {\n    helper(xs)\n}\n\nfn helper(xs: &[u32]) -> u32 {\n    xs.first().copied().unwrap()\n}\n";

#[test]
fn clean_workspace_exits_zero() {
    let root = mini_workspace("exit0", CLEAN, Some("R7 entry\n"));
    let (code, stdout, _) = run(&root, &[]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("0 violations"), "{stdout}");
    assert!(stdout.contains("mpa-audit:"), "graph stats missing: {stdout}");
}

#[test]
fn reachable_violation_exits_one_and_names_the_site() {
    let root = mini_workspace("exit1", PANICKY, Some("R7 entry\n"));
    let (code, stdout, _) = run(&root, &[]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("R7"), "{stdout}");
    assert!(stdout.contains("crates/app/src/lib.rs:6"), "{stdout}");
}

#[test]
fn no_graph_mode_skips_reachability_rules() {
    // The same panicky workspace is clean under the line rules alone —
    // the R7 family only exists in graph mode.
    let root = mini_workspace("exit0_nograph", PANICKY, None);
    let (code, stdout, _) = run(&root, &["--no-graph"]);
    assert_eq!(code, 0, "stdout: {stdout}");
}

#[test]
fn missing_roots_manifest_exits_two() {
    let root = mini_workspace("exit2_noroots", CLEAN, None);
    let (code, _, stderr) = run(&root, &[]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("audit_roots.txt"), "{stderr}");
}

#[test]
fn unresolvable_root_exits_two() {
    let root = mini_workspace("exit2_badroot", CLEAN, Some("R7 renamed_away\n"));
    let (code, _, stderr) = run(&root, &[]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("matches no workspace function"), "{stderr}");
}

#[test]
fn malformed_manifest_exits_two() {
    let root = mini_workspace("exit2_badline", CLEAN, Some("R9 entry\n"));
    let (code, _, stderr) = run(&root, &[]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("does not take reachability roots"), "{stderr}");
}

#[test]
fn unknown_flag_exits_two() {
    let (code, _, stderr) = run(Path::new("."), &["--frobnicate"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn json_report_carries_the_audit_counters() {
    let root = mini_workspace("exit0_json", CLEAN, Some("R7 entry\n"));
    let json_path = root.join("lint_report.json");
    let (code, _, _) = run(&root, &["--quiet", "--json", json_path.to_str().expect("utf8")]);
    assert_eq!(code, 0);
    let json = std::fs::read_to_string(&json_path).expect("json report");
    for counter in
        ["audit_fns_scanned", "audit_edges", "audit_reachable_r7", "audit_reachable_r8"]
    {
        assert!(json.contains(counter), "counter {counter} missing: {json}");
    }
}
