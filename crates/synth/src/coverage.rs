//! Scenario coverage: what the generated corpus actually exercised.
//!
//! A synthetic corpus only stresses the code paths its scenario happens to
//! produce — a seed tweak can silently stop generating, say, UDLD stanzas,
//! and every downstream test keeps passing while exercising less. The scan
//! here makes that measurable (following *Test Coverage for Network
//! Configurations*' framing of coverage over config corpora): it reports,
//! per dimension, how often each item of a known universe occurs in a
//! [`Dataset`], with explicit zeros for unexercised items. [`publish`]
//! pushes the scan into the `mpa-obs` coverage registry so every
//! `--obs-out` RunReport carries it, and CI gates on a committed baseline.
//!
//! Dimensions:
//!
//! * `dialect` — devices per config dialect.
//! * `change_type` — network-month occurrences of each vendor-agnostic
//!   change type, from ground truth ([`crate::ops::MonthTruth`]).
//! * `stanza_kind` — stanzas per vendor-native kind (prefixed with the
//!   dialect label), parsed from each device's final archived config.
//! * `degrade_knob` — artifacts touched by each degradation knob.

use crate::dataset::Dataset;
use mpa_config::{known_stanza_kinds, parse_config, ChangeType};
use mpa_model::device::Dialect;
use mpa_model::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Label a dialect for report keys.
fn dialect_label(d: Dialect) -> &'static str {
    match d {
        Dialect::BlockKeyword => "block-keyword",
        Dialect::BraceHierarchy => "brace-hierarchy",
    }
}

/// One item of a coverage dimension: a universe member and how often the
/// corpus exercised it (0 = declared but never seen).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageItem {
    /// Item name (e.g. a stanza kind, a change-type label).
    pub name: String,
    /// Occurrences in the scanned dataset.
    pub count: u64,
}

/// One coverage dimension: a named universe of items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageDimension {
    /// Dimension name (`dialect`, `change_type`, `stanza_kind`,
    /// `degrade_knob`).
    pub name: String,
    /// Items in sorted name order.
    pub items: Vec<CoverageItem>,
}

/// The full scenario coverage report for one dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Dimensions in sorted name order.
    pub dimensions: Vec<CoverageDimension>,
}

impl CoverageReport {
    /// Scan a dataset. Deterministic: iteration is over sorted device ids
    /// and ground truth in network order, and every universe item is
    /// emitted (with a zero count if unexercised).
    pub fn scan(dataset: &Dataset) -> Self {
        let mut dims: BTreeMap<&str, BTreeMap<String, u64>> = BTreeMap::new();

        // Universes first, so unexercised items surface as zeros.
        let dialect_dim = dims.entry("dialect").or_default();
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            dialect_dim.insert(dialect_label(d).to_string(), 0);
        }
        let ct_dim = dims.entry("change_type").or_default();
        for t in ChangeType::ALL {
            ct_dim.insert(t.label().to_string(), 0);
        }
        let sk_dim = dims.entry("stanza_kind").or_default();
        for d in [Dialect::BlockKeyword, Dialect::BraceHierarchy] {
            for kind in known_stanza_kinds(d) {
                sk_dim.insert(format!("{}/{kind}", dialect_label(d)), 0);
            }
        }
        let dk_dim = dims.entry("degrade_knob").or_default();
        for (knob, _) in crate::degrade::DegradeSpec::none().knobs() {
            dk_dim.insert(knob.to_string(), 0);
        }

        // Dialect: devices per dialect.
        let mut device_dialect = BTreeMap::new();
        for n in &dataset.networks {
            for d in &n.devices {
                device_dialect.insert(d.id, d.dialect());
                *dims
                    .get_mut("dialect")
                    .expect("declared above")
                    .get_mut(dialect_label(d.dialect()))
                    .expect("declared above") += 1;
            }
        }

        // Change types: network-month occurrences from ground truth.
        let ct_dim = dims.get_mut("change_type").expect("declared above");
        for truth in &dataset.ground_truth {
            for t in &truth.change_types {
                *ct_dim.get_mut(t.label()).expect("universe covers ALL") += 1;
            }
        }

        // Stanza kinds: parse each device's final archived config. Kinds
        // outside the known table (none today) would be added dynamically.
        let sk_dim = dims.get_mut("stanza_kind").expect("declared above");
        for dev in dataset.archive.devices() {
            let Some(dialect) = device_dialect.get(&dev).copied() else {
                continue;
            };
            let Some(tip) = dataset.archive.latest_at(dev, Timestamp(u64::MAX)) else {
                continue;
            };
            // Archived text is synthesized by our own renderer, so a parse
            // failure would be a generator bug; skip rather than panic to
            // honor the no-panics-under-degradation contract.
            let Ok(parsed) = parse_config(&tip.text, dialect) else {
                continue;
            };
            for stanza in &parsed.stanzas {
                let key = format!("{}/{}", dialect_label(dialect), stanza.kind);
                *sk_dim.entry(key).or_insert(0) += 1;
            }
        }

        // Degradation knobs: artifacts each knob touched.
        let st = &dataset.degrade;
        let dk_dim = dims.get_mut("degrade_knob").expect("declared above");
        for (knob, touched) in [
            ("miss_window", st.snapshots_dropped_window),
            ("truncate", st.snapshots_dropped_truncated),
            ("reorder", st.snapshots_reordered),
            ("dup_ticket", st.tickets_duplicated),
            ("corrupt_ticket", st.tickets_corrupted),
            ("ambiguous_login", st.logins_ambiguated),
        ] {
            *dk_dim.get_mut(knob).expect("declared above") += touched;
        }

        Self {
            dimensions: dims
                .into_iter()
                .map(|(name, items)| CoverageDimension {
                    name: name.to_string(),
                    items: items
                        .into_iter()
                        .map(|(name, count)| CoverageItem { name, count })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Push the scan into the process-wide `mpa-obs` coverage registry
    /// (clearing any previous dataset's scan) so the next RunReport
    /// carries it.
    pub fn publish(&self) {
        mpa_obs::coverage::reset();
        for dim in &self.dimensions {
            for item in &dim.items {
                mpa_obs::coverage::declare(&dim.name, &item.name);
                if item.count > 0 {
                    mpa_obs::coverage::record(&dim.name, &item.name, item.count);
                }
            }
        }
    }

    /// `(exercised, total)` item counts for one dimension, for one-line
    /// summaries (`stanza_kind 32/32`).
    pub fn exercised(&self, dimension: &str) -> (usize, usize) {
        self.dimensions
            .iter()
            .find(|d| d.name == dimension)
            .map_or((0, 0), |d| {
                (d.items.iter().filter(|i| i.count > 0).count(), d.items.len())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::DegradeSpec;
    use crate::Scenario;

    #[test]
    fn small_corpus_exercises_every_tracked_dimension() {
        let ds = Scenario::small().generate();
        let report = CoverageReport::scan(&ds);
        let (ex, total) = report.exercised("dialect");
        assert_eq!((ex, total), (2, 2), "both dialects in play");
        let (ex, total) = report.exercised("change_type");
        // The operational simulator's event families map onto exactly 8
        // change types; the remaining stanza kinds exist as static
        // boilerplate but never *change* — which is precisely the kind of
        // fact this report exists to surface.
        assert_eq!(total, 16);
        assert_eq!(ex, 8, "change types exercised: {ex}/{total}");
        let ct = report.dimensions.iter().find(|d| d.name == "change_type").unwrap();
        for label in ["iface", "vlan", "acl", "router", "pool", "user", "sflow", "qos"] {
            let item = ct.items.iter().find(|i| i.name == label).unwrap();
            assert!(item.count > 0, "event-driven type '{label}' unexercised");
        }
        let (ex, total) = report.exercised("stanza_kind");
        assert_eq!(total, 32);
        assert!(ex >= 30, "stanza kinds exercised: {ex}/{total}");
        // Pristine corpus: no degradation knob fired.
        assert_eq!(report.exercised("degrade_knob").0, 0);
    }

    #[test]
    fn degraded_corpus_lights_up_the_knob_dimension() {
        let ds = Scenario::tiny().with_degrade(DegradeSpec::heavy()).generate();
        let report = CoverageReport::scan(&ds);
        let (ex, total) = report.exercised("degrade_knob");
        assert_eq!(total, 6);
        assert!(ex >= 5, "knobs exercised: {ex}/{total}");
    }

    #[test]
    fn scan_is_deterministic_and_publishable() {
        let ds = Scenario::tiny().generate();
        let a = CoverageReport::scan(&ds);
        let b = CoverageReport::scan(&ds);
        assert_eq!(a, b);
        a.publish();
        let snap = mpa_obs::coverage::snapshot();
        assert_eq!(snap.len(), a.dimensions.len());
        let total: u64 = snap
            .iter()
            .flat_map(|(_, items)| items.iter().map(|(_, n)| *n))
            .sum();
        let expect: u64 = a
            .dimensions
            .iter()
            .flat_map(|d| d.items.iter().map(|i| i.count))
            .sum();
        assert_eq!(total, expect);
    }
}
