//! The ground-truth health model.
//!
//! Monthly incident-ticket rates are a deterministic function of the
//! network's *true* practices plus noise. This is the structural causal
//! model that DESIGN.md §3 documents; the whole point of making it explicit
//! is that the causal pipeline's conclusions (paper Table 7) become
//! *verifiable*: integration tests assert that MPA recovers exactly the
//! practices that appear in [`HealthModel::score`].
//!
//! **Causal practices** (each contributes a saturating `c·ln(1 + x/x₀)`
//! term): number of devices, change events, change types, VLANs, models,
//! roles, average devices changed per event, and the fraction of events with
//! an ACL change — the 8 practices the paper finds causal at the 1:2
//! comparison point.
//!
//! **Confounded non-causal practices** (no term here, by construction):
//! *intra-device complexity* (a derived function of VLANs/ACLs/interfaces)
//! and *fraction of events with an interface change* (mechanically
//! determined by the change mix). Both end up statistically dependent with
//! health, yet propensity matching should (and does) fail to find a causal
//! effect — reproducing the paper's Table 7 split.
//!
//! The saturating form makes low-bin contrasts strong and upper-bin
//! contrasts weak, which is what produces the paper's Table 8 (mostly
//! insignificant or imbalanced upper-bin comparisons).

use serde::{Deserialize, Serialize};

/// Static (design-time) true practice values of a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueStatics {
    /// Device count.
    pub n_devices: f64,
    /// Distinct hardware models.
    pub n_models: f64,
    /// Distinct device roles.
    pub n_roles: f64,
    /// Network-wide VLAN count.
    pub n_vlans: f64,
}

/// Realized monthly operational practice values of a network.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrueMonthly {
    /// Change events this month.
    pub n_events: f64,
    /// Distinct vendor-agnostic change types this month.
    pub n_change_types: f64,
    /// Mean devices changed per event (0 if no events).
    pub avg_event_size: f64,
    /// Fraction of events including an ACL change.
    pub frac_acl_events: f64,
}

/// Coefficients of the structural model. The model is **log-linear**:
/// `ln λ = ln(rate_scale) + b0 + Σ cᵢ·ln(1 + xᵢ/x0ᵢ) + ln(noise)` — each
/// practice has a fixed *elasticity* on the incident rate, independent of
/// the other practices' levels. Two consequences the reproduction relies
/// on: (i) neighbouring-bin treatment contrasts are multiplicative and
/// sizable for every causal practice (the sign tests of Table 7 have
/// power), and (ii) the rate distribution is log-normal-like with the
/// heavy upper tail of Fig 9(b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthModel {
    /// Additive offset in the exponent (0 in the default model).
    pub b0: f64,
    /// Device-count effect.
    pub c_devices: f64,
    /// Change-event effect.
    pub c_events: f64,
    /// Change-type-diversity effect.
    pub c_change_types: f64,
    /// VLAN-count effect.
    pub c_vlans: f64,
    /// Model-diversity effect.
    pub c_models: f64,
    /// Role-diversity effect.
    pub c_roles: f64,
    /// Event-size effect.
    pub c_event_size: f64,
    /// ACL-change-fraction effect.
    pub c_acl: f64,
    /// Base rate multiplier (`λ` when every practice term is zero).
    pub rate_scale: f64,
    /// Upper bound on the monthly rate (keeps the heavy tail at the paper's
    /// O(10) ticket scale).
    pub rate_cap: f64,
}

impl Default for HealthModel {
    fn default() -> Self {
        Self {
            b0: 0.0,
            c_devices: 0.95,
            c_events: 0.75,
            c_change_types: 0.95,
            c_vlans: 0.65,
            c_models: 0.70,
            c_roles: 0.80,
            c_event_size: 0.70,
            c_acl: 0.75,
            rate_scale: 0.0020,
            rate_cap: 40.0,
        }
    }
}

impl HealthModel {
    /// The structural score `S`: the practice-dependent part of `ln λ`.
    pub fn score(&self, st: &TrueStatics, mo: &TrueMonthly) -> f64 {
        self.b0
            + self.c_devices * (1.0 + st.n_devices / 5.0).ln()
            + self.c_events * (1.0 + mo.n_events / 5.0).ln()
            + self.c_change_types * (1.0 + mo.n_change_types / 1.5).ln()
            + self.c_vlans * (1.0 + st.n_vlans / 15.0).ln()
            + self.c_models * (1.0 + (st.n_models - 1.0).max(0.0) / 2.0).ln()
            + self.c_roles * (1.0 + (st.n_roles - 1.0).max(0.0) / 1.5).ln()
            + self.c_event_size * (1.0 + (mo.avg_event_size - 1.0).max(0.0)).ln()
            + self.c_acl * (1.0 + mo.frac_acl_events / 0.25).ln()
    }

    /// Monthly Poisson incident rate. `noise` is the network's latent
    /// multiplier (everything the 28 metrics do not capture).
    pub fn lambda(&self, st: &TrueStatics, mo: &TrueMonthly, noise: f64) -> f64 {
        let s = self.score(st, mo);
        (self.rate_scale * s.exp() * noise).clamp(0.02, self.rate_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_net() -> (TrueStatics, TrueMonthly) {
        (
            TrueStatics { n_devices: 12.0, n_models: 4.0, n_roles: 3.0, n_vlans: 16.0 },
            TrueMonthly {
                n_events: 10.0,
                n_change_types: 3.0,
                avg_event_size: 1.5,
                frac_acl_events: 0.15,
            },
        )
    }

    #[test]
    fn median_network_rate_is_near_one() {
        let m = HealthModel::default();
        let (st, mo) = median_net();
        let lambda = m.lambda(&st, &mo, 1.0);
        // A mid-size hosting network; the population median sits lower, in
        // the small mode of the bimodal size mixture.
        assert!((0.25..2.2).contains(&lambda), "median λ = {lambda}");
    }

    #[test]
    fn every_causal_practice_moves_the_rate() {
        let m = HealthModel::default();
        let (st, mo) = median_net();
        let base = m.lambda(&st, &mo, 1.0);
        let checks: Vec<(&str, f64)> = vec![
            ("devices", m.lambda(&TrueStatics { n_devices: 40.0, ..st }, &mo, 1.0)),
            ("events", m.lambda(&st, &TrueMonthly { n_events: 40.0, ..mo }, 1.0)),
            ("types", m.lambda(&st, &TrueMonthly { n_change_types: 8.0, ..mo }, 1.0)),
            ("vlans", m.lambda(&TrueStatics { n_vlans: 120.0, ..st }, &mo, 1.0)),
            ("models", m.lambda(&TrueStatics { n_models: 12.0, ..st }, &mo, 1.0)),
            ("roles", m.lambda(&TrueStatics { n_roles: 5.0, ..st }, &mo, 1.0)),
            ("event size", m.lambda(&st, &TrueMonthly { avg_event_size: 5.0, ..mo }, 1.0)),
            ("acl frac", m.lambda(&st, &TrueMonthly { frac_acl_events: 0.6, ..mo }, 1.0)),
        ];
        for (name, worse) in checks {
            assert!(worse > base * 1.05, "{name}: {worse} vs base {base}");
        }
    }

    #[test]
    fn effects_saturate_at_high_values() {
        // The marginal effect of an equal *additive* step must shrink — this
        // is what makes the equal-width upper-bin contrasts of the causal
        // QED weak (paper Table 8) while the 1:2 contrast stays strong.
        let m = HealthModel::default();
        let (st, _) = median_net();
        let s = |ev: f64| {
            m.score(&st, &TrueMonthly { n_events: ev, ..TrueMonthly::default() })
        };
        let low_gain = s(10.0) - s(5.0);
        let high_gain = s(165.0) - s(160.0);
        assert!(high_gain < low_gain * 0.25, "low {low_gain}, high {high_gain}");
    }

    #[test]
    fn noise_scales_multiplicatively_and_rate_is_floored() {
        let m = HealthModel::default();
        let (st, mo) = median_net();
        let l1 = m.lambda(&st, &mo, 1.0);
        let l2 = m.lambda(&st, &mo, 2.0);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
        assert!(m.lambda(&st, &mo, 0.0) >= 0.02);
    }

    #[test]
    fn big_busy_networks_reach_the_very_poor_class() {
        // Fig 9(b) has a visible ≥12-tickets tail; the model must be able to
        // produce such rates for large, busy, diverse networks.
        let m = HealthModel::default();
        let st = TrueStatics { n_devices: 400.0, n_models: 15.0, n_roles: 5.0, n_vlans: 200.0 };
        let mo = TrueMonthly {
            n_events: 150.0,
            n_change_types: 9.0,
            avg_event_size: 4.0,
            frac_acl_events: 0.3,
        };
        let lambda = m.lambda(&st, &mo, 1.6);
        assert!(lambda > 10.0, "tail λ = {lambda}");
    }
}
