//! Seeded degradation of a simulated network's artifacts.
//!
//! The paper's corpus is messy by nature: the NMS misses snapshot windows,
//! devices join the archive late, syslog-triggered snapshots arrive with
//! skewed clocks, and the incident system holds duplicate and half-filled
//! tickets (§2.1 lists exactly these caveats). Our substrate is clean by
//! construction, so this module re-introduces the mess *deterministically*:
//! every knob is a probability in `[0, 1]`, every draw comes from the same
//! per-network RNG stream as generation itself, and every artifact touched
//! is counted in [`DegradeStats`] so downstream invariants
//! (`kept + dropped == generated`) are checkable in the RunReport.
//!
//! Degradation runs on the worker threads, per network, *after*
//! [`crate::ops::simulate_network`] — the ground truth ([`crate::ops::MonthTruth`])
//! is recorded from the pristine simulation, so experiments can measure how
//! far degraded inference drifts from what actually happened.

use crate::ops::NetworkSimOutput;
use mpa_config::{Login, SnapshotArchive};
use mpa_model::{StudyPeriod, TicketId};
use mpa_stats::Sampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shared accounts a degraded snapshot's login is replaced with. None of
/// them appear in the organization's [`mpa_config::UserDirectory`], so the
/// automated/manual classifier must fall back to its conservative default
/// (manual) — exactly the ambiguity the paper acknowledges for scripts run
/// under regular accounts.
const AMBIGUOUS_LOGINS: &[&str] = &["shared-console", "netops", "root"];

/// Symptom string stamped onto corrupted ticket records.
const CORRUPT_SYMPTOM: &str = "corrupted-record";

/// Degradation knobs. Each field is an independent probability; the
/// default ([`DegradeSpec::none`]) draws no RNG at all, keeping pristine
/// generation byte-identical to pre-degradation builds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradeSpec {
    /// Per device: probability that an interior window of its snapshot
    /// history is lost (the NMS was down; the feed was interrupted).
    pub miss_window: f64,
    /// Per device: probability that the tail of its history is missing
    /// (the device was decommissioned from monitoring mid-study).
    pub truncate: f64,
    /// Per adjacent snapshot pair: probability their timestamps are
    /// swapped (clock skew between the device and the collector).
    pub reorder: f64,
    /// Per ticket: probability a duplicate record is filed (operators
    /// double-entering the same incident).
    pub dup_ticket: f64,
    /// Per ticket: probability the record is corrupted — resolution
    /// cleared, symptom replaced, and possibly timestamped outside the
    /// study period entirely.
    pub corrupt_ticket: f64,
    /// Per snapshot: probability the login is replaced with a shared
    /// account unknown to the user directory.
    pub ambiguous_login: f64,
}

impl DegradeSpec {
    /// No degradation (the default): generation is bit-identical to a
    /// build without the degradation layer.
    pub fn none() -> Self {
        Self::default()
    }

    /// Mild mess: a few percent of artifacts touched. Comparable to a
    /// well-run NMS with occasional collector downtime.
    pub fn light() -> Self {
        Self {
            miss_window: 0.05,
            truncate: 0.03,
            reorder: 0.02,
            dup_ticket: 0.05,
            corrupt_ticket: 0.03,
            ambiguous_login: 0.05,
        }
    }

    /// Heavy mess: a quarter of devices lose windows, a quarter of
    /// snapshots lose attributable logins. Past the paper's plausible
    /// range — useful as a stress ceiling.
    pub fn heavy() -> Self {
        Self {
            miss_window: 0.25,
            truncate: 0.15,
            reorder: 0.10,
            dup_ticket: 0.20,
            corrupt_ticket: 0.15,
            ambiguous_login: 0.25,
        }
    }

    /// Whether any knob is nonzero. Inactive specs skip the degradation
    /// pass entirely (no RNG draws, no archive rebuild).
    pub fn is_active(&self) -> bool {
        self.miss_window > 0.0
            || self.truncate > 0.0
            || self.reorder > 0.0
            || self.dup_ticket > 0.0
            || self.corrupt_ticket > 0.0
            || self.ambiguous_login > 0.0
    }

    /// The knobs as `(name, rate)` pairs, in declaration order. The names
    /// double as the coverage report's `degrade_knob` dimension items.
    pub fn knobs(&self) -> [(&'static str, f64); 6] {
        [
            ("miss_window", self.miss_window),
            ("truncate", self.truncate),
            ("reorder", self.reorder),
            ("dup_ticket", self.dup_ticket),
            ("corrupt_ticket", self.corrupt_ticket),
            ("ambiguous_login", self.ambiguous_login),
        ]
    }

    /// Parse a `--degrade` spec: a preset name (`none`, `light`, `heavy`)
    /// or a comma-separated `key=rate` list over the knob keys `miss`,
    /// `trunc`, `reorder`, `duptick`, `corrupt`, `login`, e.g.
    /// `miss=0.1,login=0.25`. Unlisted keys stay 0. Rates must be finite
    /// and within `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "none" => return Ok(Self::none()),
            "light" => return Ok(Self::light()),
            "heavy" => return Ok(Self::heavy()),
            "" => return Err("empty degrade spec".to_string()),
            _ => {}
        }
        let mut out = Self::none();
        for part in spec.split(',') {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=rate, got '{part}'"))?;
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("rate for '{key}' is not a number: '{value}'"))?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate for '{key}' must be in [0, 1], got {value}"));
            }
            let slot = match key {
                "miss" => &mut out.miss_window,
                "trunc" => &mut out.truncate,
                "reorder" => &mut out.reorder,
                "duptick" => &mut out.dup_ticket,
                "corrupt" => &mut out.corrupt_ticket,
                "login" => &mut out.ambiguous_login,
                _ => {
                    return Err(format!(
                        "unknown degrade knob '{key}' (expected miss, trunc, \
                         reorder, duptick, corrupt or login)"
                    ))
                }
            };
            *slot = rate;
        }
        Ok(out)
    }
}

/// Exact accounting of what the degradation pass touched. Summable across
/// networks; the totals surface as `degrade_*` counters in the RunReport
/// and must satisfy `snapshots_kept() + snapshots_dropped() ==
/// snapshots_generated` and `tickets_generated + tickets_duplicated ==`
/// final ticket count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradeStats {
    /// Snapshots produced by the pristine simulation.
    pub snapshots_generated: u64,
    /// Snapshots lost to a missing collector window.
    pub snapshots_dropped_window: u64,
    /// Snapshots lost to a truncated device history.
    pub snapshots_dropped_truncated: u64,
    /// Snapshots that became time-adjacent duplicates after reordering
    /// and were collapsed (an NMS stores one record per distinct state).
    pub snapshots_dropped_deduped: u64,
    /// Adjacent snapshot pairs whose timestamps were swapped.
    pub snapshots_reordered: u64,
    /// Snapshots whose login was replaced with a shared account.
    pub logins_ambiguated: u64,
    /// Tickets produced by the pristine simulation.
    pub tickets_generated: u64,
    /// Duplicate ticket records appended.
    pub tickets_duplicated: u64,
    /// Ticket records corrupted in place.
    pub tickets_corrupted: u64,
}

impl DegradeStats {
    /// Snapshots lost for any reason.
    pub fn snapshots_dropped(&self) -> u64 {
        self.snapshots_dropped_window
            + self.snapshots_dropped_truncated
            + self.snapshots_dropped_deduped
    }

    /// Snapshots surviving into the degraded archive.
    pub fn snapshots_kept(&self) -> u64 {
        self.snapshots_generated - self.snapshots_dropped()
    }

    /// Accumulate another network's stats into this total.
    pub fn add(&mut self, other: &DegradeStats) {
        self.snapshots_generated += other.snapshots_generated;
        self.snapshots_dropped_window += other.snapshots_dropped_window;
        self.snapshots_dropped_truncated += other.snapshots_dropped_truncated;
        self.snapshots_dropped_deduped += other.snapshots_dropped_deduped;
        self.snapshots_reordered += other.snapshots_reordered;
        self.logins_ambiguated += other.logins_ambiguated;
        self.tickets_generated += other.tickets_generated;
        self.tickets_duplicated += other.tickets_duplicated;
        self.tickets_corrupted += other.tickets_corrupted;
    }
}

/// Degrade one network's simulation output in place. Runs on the worker
/// thread with the network's own RNG stream (continuing after
/// `simulate_network`'s draws), so the result is bit-identical at any
/// thread count. The caller must gate on [`DegradeSpec::is_active`] so
/// pristine runs draw nothing.
pub fn degrade_network<R: Rng>(
    out: &mut NetworkSimOutput,
    spec: &DegradeSpec,
    period: &StudyPeriod,
    rng: &mut R,
) -> DegradeStats {
    let mut stats = DegradeStats::default();
    let mut s = Sampler::new(rng);

    // --- snapshot histories -------------------------------------------
    // Materialize each device's history, knock it about, re-sort by time
    // and rebuild a fresh archive. `devices()` iterates the underlying
    // BTreeMap in ascending id order, so the pass is deterministic.
    let devices: Vec<_> = out.archive.devices().collect();
    let mut rebuilt = SnapshotArchive::new();
    for dev in devices {
        let mut history = out.archive.device_history(dev);
        stats.snapshots_generated += history.len() as u64;

        // Missing interior window: the collector was down for a stretch.
        // Keep the first snapshot (the device's initial config predates
        // the study) and at least one after the gap.
        if history.len() >= 4 && s.bernoulli(spec.miss_window) {
            let lo = s.uniform_range(1, history.len() as u64 - 2) as usize;
            let len = s.uniform_range(1, (history.len() - 1 - lo) as u64) as usize;
            history.drain(lo..lo + len);
            stats.snapshots_dropped_window += len as u64;
        }

        // Truncated tail: the device dropped out of monitoring.
        if history.len() >= 3 && s.bernoulli(spec.truncate) {
            let keep = s.uniform_range(1, history.len() as u64 - 1) as usize;
            stats.snapshots_dropped_truncated += (history.len() - keep) as u64;
            history.truncate(keep);
        }

        // Clock skew: swap adjacent timestamps, then restore time order
        // below — the *content* order ends up wrong relative to the edit
        // sequence, which is what inference must survive.
        for i in 1..history.len() {
            if s.bernoulli(spec.reorder) {
                let t = history[i - 1].meta.time;
                history[i - 1].meta.time = history[i].meta.time;
                history[i].meta.time = t;
                stats.snapshots_reordered += 1;
            }
        }

        // Ambiguous logins: replace with a shared account the directory
        // cannot classify.
        for snap in &mut history {
            if s.bernoulli(spec.ambiguous_login) {
                let pick = s.uniform_range(0, AMBIGUOUS_LOGINS.len() as u64 - 1) as usize;
                snap.meta.login = Login::new(AMBIGUOUS_LOGINS[pick]);
                stats.logins_ambiguated += 1;
            }
        }

        history.sort_by_key(|snap| snap.meta.time);
        history.dedup_by(|b, a| {
            let dup = a.text == b.text;
            if dup {
                stats.snapshots_dropped_deduped += 1;
            }
            dup
        });
        for snap in history {
            rebuilt
                .push(snap)
                .expect("degraded history is sorted by time before rebuild");
        }
    }
    out.archive = rebuilt;

    // --- tickets -------------------------------------------------------
    // Iterate in stored (chronological) order; duplicates are appended at
    // the end so original indices stay stable, and the org-wide merge
    // re-keys every ticket id afterwards.
    stats.tickets_generated = out.tickets.len() as u64;
    let mut duplicates = Vec::new();
    let period_end = period.month_end(period.n_months() - 1);
    for t in &mut out.tickets {
        if s.bernoulli(spec.corrupt_ticket) {
            t.resolved = None;
            t.symptom = CORRUPT_SYMPTOM.to_string();
            // Half the corrupted records also carry a garbage open time
            // past the study period; `StudyPeriod::month_of` returns
            // `None` for them and inference must drop them gracefully.
            if s.bernoulli(0.5) {
                t.opened = mpa_model::Timestamp(period_end.0 + 1 + s.uniform_range(0, 44_640));
            }
            stats.tickets_corrupted += 1;
        }
        if s.bernoulli(spec.dup_ticket) {
            let mut dup = t.clone();
            dup.id = TicketId(0); // re-keyed during the org-wide merge
            duplicates.push(dup);
            stats.tickets_duplicated += 1;
        }
    }
    out.tickets.extend(duplicates);

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn parse_accepts_presets_and_key_value_lists() {
        assert_eq!(DegradeSpec::parse("none").unwrap(), DegradeSpec::none());
        assert_eq!(DegradeSpec::parse("light").unwrap(), DegradeSpec::light());
        assert_eq!(DegradeSpec::parse("heavy").unwrap(), DegradeSpec::heavy());
        let spec = DegradeSpec::parse("miss=0.1,login=0.25").unwrap();
        assert_eq!(spec.miss_window, 0.1);
        assert_eq!(spec.ambiguous_login, 0.25);
        assert_eq!(spec.truncate, 0.0);
        assert!(spec.is_active());
        assert!(!DegradeSpec::parse("miss=0").unwrap().is_active());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "bogus=1", "miss=abc", "miss=2.0", "miss=-0.1", "miss", "miss=nan"] {
            assert!(DegradeSpec::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn degradation_accounting_balances() {
        let clean = Scenario::tiny().generate();
        let degraded = Scenario::tiny().with_degrade(DegradeSpec::heavy()).generate();
        let st = &degraded.degrade;
        assert_eq!(st.snapshots_kept() + st.snapshots_dropped(), st.snapshots_generated);
        assert_eq!(
            st.snapshots_kept(),
            degraded.archive.n_snapshots() as u64,
            "archive size must match the kept count"
        );
        assert_eq!(
            st.tickets_generated + st.tickets_duplicated,
            degraded.tickets.len() as u64
        );
        assert_eq!(st.snapshots_generated, clean.archive.n_snapshots() as u64);
        assert!(st.snapshots_dropped() > 0, "heavy degradation should drop snapshots");
        assert!(st.tickets_corrupted > 0);
        assert!(st.logins_ambiguated > 0);
    }

    #[test]
    fn degradation_is_deterministic() {
        let spec = DegradeSpec::light();
        let a = Scenario::tiny().with_degrade(spec).generate();
        let b = Scenario::tiny().with_degrade(spec).generate();
        assert_eq!(a.degrade, b.degrade);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn inactive_spec_leaves_generation_untouched() {
        let clean = Scenario::tiny().generate();
        let nodeg = Scenario::tiny().with_degrade(DegradeSpec::none()).generate();
        assert_eq!(clean.summary(), nodeg.summary());
        assert_eq!(nodeg.degrade, DegradeStats::default());
    }

    #[test]
    fn ticket_ids_stay_unique_after_duplication() {
        let ds = Scenario::tiny().with_degrade(DegradeSpec::heavy()).generate();
        let mut ids: Vec<_> = ds.tickets.iter().map(|t| t.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
