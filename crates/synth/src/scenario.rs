//! Scenario presets and the end-to-end generation pipeline.
//!
//! [`Scenario::paper`] reproduces the paper's scale (850+ networks over the
//! Aug 2013 – Dec 2014 period); the smaller presets keep tests and criterion
//! benches fast while exercising identical code paths.

use crate::dataset::Dataset;
use crate::degrade::{degrade_network, DegradeSpec, DegradeStats};
use crate::health::HealthModel;
use crate::netgen::generate_network;
use crate::ops::{simulate_network_with_mode, GenMode, SimConfig};
use crate::profile::{sample_profiles, OrgConfig};
use mpa_obs::phases;
use mpa_config::{SnapshotArchive, UserDirectory};
use mpa_model::{Inventory, InventoryRecord, Month, StudyPeriod, TicketId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A named generation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Organization-level knobs.
    pub org: OrgConfig,
    /// Ground-truth health model.
    pub health: HealthModel,
    /// Degradation knobs applied after simulation (default: none, which
    /// draws no RNG and leaves generation byte-identical to builds
    /// without the degradation layer).
    pub degrade: DegradeSpec,
}

impl Scenario {
    /// The paper's scale: 860 networks × 17 months (Aug 2013 – Dec 2014).
    pub fn paper() -> Self {
        Self {
            org: OrgConfig {
                seed: 0x4D50_4131, // "MPA1"
                n_networks: 860,
                n_months: 17,
                n_services: 120,
                missing_month_rate: 0.21,
                noise_sigma: 0.15,
            },
            health: HealthModel::default(),
            degrade: DegradeSpec::none(),
        }
    }

    /// A mid-size fixture: enough cases for stable statistics, fast enough
    /// for integration tests and benches (≈220 networks × 10 months).
    pub fn medium() -> Self {
        Self {
            org: OrgConfig {
                seed: 0x4D50_4132,
                n_networks: 220,
                n_months: 10,
                n_services: 60,
                missing_month_rate: 0.2,
                noise_sigma: 0.15,
            },
            health: HealthModel::default(),
            degrade: DegradeSpec::none(),
        }
    }

    /// A small fixture for unit-level integration (≈48 networks × 5 months).
    pub fn small() -> Self {
        Self {
            org: OrgConfig {
                seed: 0x4D50_4133,
                n_networks: 48,
                n_months: 5,
                n_services: 30,
                missing_month_rate: 0.15,
                noise_sigma: 0.15,
            },
            health: HealthModel::default(),
            degrade: DegradeSpec::none(),
        }
    }

    /// The smallest useful fixture (12 networks × 3 months).
    pub fn tiny() -> Self {
        Self {
            org: OrgConfig {
                seed: 0x4D50_4134,
                n_networks: 12,
                n_months: 3,
                n_services: 12,
                missing_month_rate: 0.1,
                noise_sigma: 0.15,
            },
            health: HealthModel::default(),
            degrade: DegradeSpec::none(),
        }
    }

    /// A deliberately messy 2-network corpus for the degraded golden
    /// fixture: heavy degradation over a small fleet, so the golden files
    /// stay reviewable while every knob fires.
    pub fn degraded_demo() -> Self {
        Self {
            org: OrgConfig {
                seed: 0x4D50_4744, // "MPGD"
                n_networks: 2,
                n_months: 4,
                n_services: 8,
                missing_month_rate: 0.15,
                noise_sigma: 0.15,
            },
            health: HealthModel::default(),
            degrade: DegradeSpec::heavy(),
        }
    }

    /// Override the seed (e.g., for robustness checks across datasets).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.org.seed = seed;
        self
    }

    /// Override the degradation knobs.
    pub fn with_degrade(mut self, degrade: DegradeSpec) -> Self {
        self.degrade = degrade;
        self
    }

    /// Generate the full dataset: profiles → networks → 17-month simulation
    /// → archive/tickets/coverage/ground-truth.
    ///
    /// Networks fan out across the configured worker threads
    /// (`mpa_exec::threads()`): each network draws from its own RNG stream
    /// (`stream_seed(org.seed, network_id)`) and allocates device ids from
    /// a pre-assigned dense range, so the result is bit-for-bit identical
    /// at any thread count. Only ticket ids are allocated org-wide; they
    /// are assigned during the (deterministic, network-ordered) merge.
    pub fn generate(&self) -> Dataset {
        self.generate_with_mode(GenMode::default())
    }

    /// [`Scenario::generate`] with an explicit snapshot-rendering mode.
    ///
    /// The mode is deliberately a call parameter, not a `Scenario` field:
    /// it must never leak into scenario serialization or seed derivation —
    /// `delta` and `full` produce byte-identical datasets by contract
    /// (`tests/gen_mode_equivalence.rs` in `mpa-core` enforces it).
    pub fn generate_with_mode(&self, mode: GenMode) -> Dataset {
        let period = StudyPeriod::new(Month::new(2013, 8).expect("valid"), self.org.n_months);
        let mut rng = StdRng::seed_from_u64(self.org.seed);
        let profiles = sample_profiles(&self.org, &mut rng);

        let sim = SimConfig { missing_month_rate: self.org.missing_month_rate };

        // Device ids must be assigned inside `generate_network` (they are
        // rendered into hostnames, loopback addresses and config text), so
        // each network gets a pre-assigned dense contiguous id range. The
        // count depends on the network's first RNG draws (the role mix), so
        // a cheap sequential pre-pass replays exactly those draws from the
        // same per-network stream seed the worker will use; ids stay dense
        // (the `10.H.L.1` address plan caps them at 65535) and identical at
        // any thread count.
        let mut next_base = 0u32;
        let work: Vec<(&crate::profile::NetworkProfile, u32)> = profiles
            .iter()
            .map(|profile| {
                let seed = mpa_exec::stream_seed(self.org.seed, u64::from(profile.id.0));
                let mut rng = StdRng::seed_from_u64(seed);
                let base = next_base;
                next_base += crate::netgen::device_count(profile, &mut rng) as u32;
                (profile, base)
            })
            .collect();

        // The render/encode phase accumulators tick inside the workers;
        // their per-run deltas are annotated into the span tree under
        // "simulate" (they are summed worker time, not wall sub-intervals).
        let render0 = phases::GEN_RENDER.get_ns();
        let encode0 = phases::GEN_ENCODE.get_ns();
        let per_network = mpa_obs::span("simulate", || {
            let per_network = phases::time(&phases::GEN_SIMULATE, || {
                mpa_exec::par_map(&work, |_, &(profile, base)| {
                    let seed = mpa_exec::stream_seed(self.org.seed, u64::from(profile.id.0));
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut next_device_id = base;
                    let mut gen = generate_network(profile, &mut next_device_id, &mut rng);
                    let mut local_ticket_seq = 0u32;
                    let mut out = simulate_network_with_mode(
                        &mut gen,
                        profile,
                        &period,
                        &self.health,
                        sim,
                        mode,
                        &mut local_ticket_seq,
                        &mut rng,
                    );
                    // Degrade on the worker, continuing the same per-network
                    // RNG stream — deterministic at any thread count.
                    // Inactive specs draw nothing, keeping pristine runs
                    // byte-identical. Degradation operates on the finished
                    // per-network archive, so it is gen-mode-agnostic.
                    let degrade_stats = if self.degrade.is_active() {
                        degrade_network(&mut out, &self.degrade, &period, &mut rng)
                    } else {
                        DegradeStats::default()
                    };
                    // Inventory rows (site strings are pure functions of the
                    // ids) are built here, on the workers, so the merge pass
                    // below is pure bookkeeping; dropping `gen.configs` on
                    // the worker also releases each network's semantic state
                    // as soon as it is done.
                    let records: Vec<InventoryRecord> = gen
                        .network
                        .devices
                        .iter()
                        .map(|d| {
                            let site = format!("dc{}/r{}", d.network.0 % 8, d.id.0 % 40);
                            InventoryRecord::from_device(d, site)
                        })
                        .collect();
                    (gen.network, records, out, degrade_stats)
                })
            });
            mpa_obs::annotate_span("render", phases::GEN_RENDER.get_ns().saturating_sub(render0));
            mpa_obs::annotate_span("encode", phases::GEN_ENCODE.get_ns().saturating_sub(encode0));
            per_network
        });

        let mut ticket_seq = 0u32;
        let mut networks = Vec::with_capacity(profiles.len());
        let mut inventory_records = Vec::new();
        let mut archives = Vec::with_capacity(profiles.len());
        let mut tickets = Vec::new();
        let mut coverage = std::collections::BTreeSet::new();
        let mut ground_truth = Vec::new();

        let mut degrade_total = DegradeStats::default();
        for (network, records, out, degrade_stats) in per_network {
            degrade_total.add(&degrade_stats);
            inventory_records.extend(records);
            archives.push(out.archive);
            // Re-key the per-network ticket sequences into one dense
            // org-wide sequence (ids are referenced nowhere else).
            tickets.extend(out.tickets.into_iter().map(|mut t| {
                ticket_seq += 1;
                t.id = TicketId(ticket_seq);
                t
            }));
            for t in &out.truth {
                if t.logged {
                    coverage.insert((t.network, t.month));
                }
            }
            ground_truth.extend(out.truth);
            networks.push(network);
        }

        // Two-phase sharded merge with offset-partitioned global id
        // allocation: shard tables are concatenated once (sequential), then
        // every shard's ids are shifted by a constant offset on the worker
        // threads — no per-id remap table (see DESIGN.md §15).
        let archive = mpa_obs::span("merge", || {
            phases::time(&phases::GEN_MERGE, || SnapshotArchive::merge_all(archives))
        });

        let directory =
            UserDirectory::new(["svc-netauto".to_string(), "svc-deploy".to_string()]);

        // Surface the degradation accounting as obs counters (summed on
        // this sequential merge pass, so the totals are thread-invariant
        // like every other registered counter).
        mpa_obs::counters::DEGRADE_SNAPSHOTS_GENERATED.add(degrade_total.snapshots_generated);
        mpa_obs::counters::DEGRADE_SNAPSHOTS_DROPPED.add(degrade_total.snapshots_dropped());
        mpa_obs::counters::DEGRADE_SNAPSHOTS_KEPT.add(degrade_total.snapshots_kept());
        mpa_obs::counters::DEGRADE_SNAPSHOTS_REORDERED.add(degrade_total.snapshots_reordered);
        mpa_obs::counters::DEGRADE_LOGINS_AMBIGUATED.add(degrade_total.logins_ambiguated);
        mpa_obs::counters::DEGRADE_TICKETS_GENERATED.add(degrade_total.tickets_generated);
        mpa_obs::counters::DEGRADE_TICKETS_DUPLICATED.add(degrade_total.tickets_duplicated);
        mpa_obs::counters::DEGRADE_TICKETS_CORRUPTED.add(degrade_total.tickets_corrupted);

        Dataset {
            period,
            networks,
            inventory: Inventory::new(inventory_records),
            archive,
            tickets,
            directory,
            coverage,
            ground_truth,
            degrade: degrade_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpa_model::TicketKind;

    #[test]
    fn tiny_scenario_generates_a_consistent_dataset() {
        let ds = Scenario::tiny().generate();
        assert_eq!(ds.networks.len(), 12);
        assert_eq!(ds.period.n_months(), 3);
        for n in &ds.networks {
            assert_eq!(n.validate(), Ok(()));
        }
        assert_eq!(
            ds.inventory.n_devices(),
            ds.networks.iter().map(|n| n.size()).sum::<usize>()
        );
        // Ground truth covers every network-month.
        assert_eq!(ds.ground_truth.len(), 12 * 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::tiny().generate();
        let b = Scenario::tiny().generate();
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.ground_truth.len(), b.ground_truth.len());
        assert_eq!(format!("{:?}", a.ground_truth[5]), format!("{:?}", b.ground_truth[5]));
    }

    #[test]
    fn gen_modes_are_byte_identical_end_to_end() {
        let delta = Scenario::tiny().generate_with_mode(GenMode::Delta);
        let full = Scenario::tiny().generate_with_mode(GenMode::Full);
        assert_eq!(
            serde_json::to_string(&delta.archive).unwrap(),
            serde_json::to_string(&full.archive).unwrap(),
            "merged archives diverged between gen modes"
        );
        assert_eq!(delta.summary(), full.summary());
        assert_eq!(delta.tickets, full.tickets);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::tiny().generate();
        let b = Scenario::tiny().with_seed(99).generate();
        assert_ne!(a.summary().tickets, b.summary().tickets);
    }

    #[test]
    fn small_scenario_has_healthy_majority() {
        // Sanity on the calibration direction: most network-months should
        // be low-ticket (the skew the paper fights in §6).
        let ds = Scenario::small().generate();
        let mut monthly_counts = std::collections::BTreeMap::new();
        for t in &ds.tickets {
            if t.kind == TicketKind::PlannedMaintenance {
                continue;
            }
            let month = ds.period.month_of(t.opened).expect("in period");
            *monthly_counts.entry((t.network, month)).or_insert(0u32) += 1;
        }
        let total = ds.networks.len() * ds.period.n_months();
        let healthy = total - monthly_counts.values().filter(|&&c| c > 1).count();
        let frac = healthy as f64 / total as f64;
        assert!(
            (0.5..0.85).contains(&frac),
            "healthy (≤1 ticket) fraction should be majority-but-skewed: {frac}"
        );
    }

    #[test]
    fn ticket_ids_are_unique() {
        let ds = Scenario::tiny().generate();
        let mut ids: Vec<_> = ds.tickets.iter().map(|t| t.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
