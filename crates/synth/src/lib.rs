//! # mpa-synth — synthetic online-service-provider substrate
//!
//! The paper's evaluation runs on 17 months of proprietary data from 850+
//! networks of a large online service provider (OSP): inventory records,
//! O(100K) configuration snapshots, and O(10K) trouble tickets. That data is
//! not redistributable, so this crate builds the closest synthetic
//! equivalent — an organization whose *generated* raw data (never its
//! latent intent) is handed to the inference pipeline:
//!
//! * [`profile`] — per-network latent practice profiles sampled to match the
//!   distributions characterized in the paper's Appendix A (device counts,
//!   heterogeneity, protocol usage, VLAN heavy tail, change activity,
//!   automation extent, change-type mixes).
//! * [`catalog`] — the fictional hardware catalog (vendors × roles × model
//!   lines × firmware trains).
//! * [`netgen`] — materializes a profile into a [`mpa_model::Network`]
//!   (devices, topology) plus per-device semantic configurations.
//! * [`ops`] — the operational simulator: month by month, change events
//!   mutate device configs; every mutation renders config text and archives
//!   a snapshot with login metadata, exactly the trail RANCID/HPNA leave.
//! * [`health`] — the **ground-truth structural causal model**: monthly
//!   incident-ticket rates are a function of the *true* causal practices
//!   (documented in DESIGN.md §3). Two practices are confounded-but-not-
//!   causal by construction, so the causal pipeline's findings can be
//!   verified against truth.
//! * [`survey`] — the 51-operator survey of Figure 2.
//! * [`dataset`] — the bundle handed to inference: inventory, snapshot
//!   archive, ticket log, user directory, logging coverage; plus the
//!   ground-truth table used only by validation tests and EXPERIMENTS.md.
//! * [`scenario`] — presets: [`scenario::Scenario::paper`] (850+ networks ×
//!   17 months), plus smaller fixtures for tests and benches.
//! * [`degrade`] — seeded degradation knobs (missing snapshot windows,
//!   truncated histories, clock skew, duplicate/corrupt tickets, ambiguous
//!   logins) that re-introduce the mess the paper's real corpus has and
//!   ours, by construction, lacks.
//! * [`coverage`] — the scenario coverage scan: which stanza kinds, change
//!   types, dialects and degradation knobs a generated corpus actually
//!   exercised, published into the `mpa-obs` RunReport.

pub mod catalog;
pub mod coverage;
pub mod dataset;
pub mod degrade;
pub mod health;
pub mod netgen;
pub mod ops;
pub mod profile;
pub mod scenario;
pub mod survey;

pub use coverage::CoverageReport;
pub use dataset::{Dataset, DatasetSummary, GroundTruth};
pub use degrade::{DegradeSpec, DegradeStats};
pub use health::HealthModel;
pub use ops::GenMode;
pub use profile::{NetworkProfile, OrgConfig};
pub use scenario::Scenario;
pub use survey::{ImpactOpinion, SurveyPractice, SurveyResponse};
