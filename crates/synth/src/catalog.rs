//! The hardware catalog: which vendors sell which model lines for which
//! roles, and which firmware trains each line runs.
//!
//! Inventory heterogeneity in the paper's OSP is wide (Appendix A.1: >81% of
//! networks multi-vendor with a max of 6 vendors; >96% multi-model with a
//! max of 25 models; hardware entropy up to 0.82). The catalog is sized so
//! those extremes are reachable: every role has at least two vendors and
//! every vendor/role combination has several model lines.

use mpa_model::{DeviceModel, Firmware, Role, Vendor};

/// Vendors that sell equipment for a role, in preference order (the first
/// entry is the organization's "standard" choice for that role).
pub fn vendors_for_role(role: Role) -> &'static [Vendor] {
    match role {
        Role::Router => &[Vendor::Cirrus, Vendor::Junia],
        Role::Switch => &[Vendor::Cirrus, Vendor::Aristotle, Vendor::Junia],
        Role::Firewall => &[Vendor::Fortima, Vendor::Aristotle],
        Role::LoadBalancer => &[Vendor::Balancio, Vendor::Nettle],
        Role::Adc => &[Vendor::Nettle, Vendor::Balancio],
    }
}

/// Model lines a vendor offers for a role. Line numbers are unique within a
/// vendor across roles (so a model line identifies its role family), which
/// keeps hardware-entropy computation honest: the same line never appears in
/// two roles unless deliberately reused.
pub fn model_lines(vendor: Vendor, role: Role) -> Vec<u16> {
    let base: u16 = match role {
        Role::Router => 7000,
        Role::Switch => 4000,
        Role::Firewall => 2000,
        Role::LoadBalancer => 8000,
        Role::Adc => 9000,
    };
    let offset = match vendor {
        Vendor::Cirrus => 0,
        Vendor::Junia => 100,
        Vendor::Aristotle => 200,
        Vendor::Fortima => 300,
        Vendor::Balancio => 400,
        Vendor::Nettle => 500,
    };
    // Four generations per vendor/role family.
    (0..4).map(|g| base + offset + g * 10).collect()
}

/// Concrete model for a vendor/role/generation triple.
pub fn model(vendor: Vendor, role: Role, generation: usize) -> DeviceModel {
    let lines = model_lines(vendor, role);
    DeviceModel { vendor, line: lines[generation % lines.len()] }
}

/// Firmware trains available for a model line (major versions; each train
/// has several minor/patch levels).
pub fn firmware_trains(model: DeviceModel) -> Vec<Firmware> {
    // Train majors derive from the line so different lines run visibly
    // different firmware families.
    let major = (model.line / 1000) as u8 + 8;
    (0..3)
        .flat_map(|minor| (0..2).map(move |patch| Firmware { major, minor, patch }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_role_has_multiple_vendors() {
        for role in Role::ALL {
            assert!(vendors_for_role(role).len() >= 2, "{role:?}");
        }
    }

    #[test]
    fn model_lines_are_unique_across_vendor_role_pairs() {
        let mut seen = std::collections::BTreeSet::new();
        for role in Role::ALL {
            for &vendor in vendors_for_role(role) {
                for line in model_lines(vendor, role) {
                    assert!(seen.insert((vendor, line)), "duplicate line {vendor:?} {line}");
                }
            }
        }
    }

    #[test]
    fn model_generation_wraps() {
        let a = model(Vendor::Cirrus, Role::Switch, 0);
        let b = model(Vendor::Cirrus, Role::Switch, 4);
        assert_eq!(a, b, "generation wraps modulo catalog size");
        let c = model(Vendor::Cirrus, Role::Switch, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn firmware_trains_are_plural_and_distinct() {
        let m = model(Vendor::Junia, Role::Router, 0);
        let trains = firmware_trains(m);
        assert_eq!(trains.len(), 6);
        let set: std::collections::BTreeSet<_> = trains.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn catalog_supports_max_vendor_diversity() {
        // A network drawing every role from every offered vendor reaches the
        // paper's maximum of 6 vendors.
        let mut vendors = std::collections::BTreeSet::new();
        for role in Role::ALL {
            for &v in vendors_for_role(role) {
                vendors.insert(v);
            }
        }
        assert_eq!(vendors.len(), 6);
    }
}
