//! The operational simulator.
//!
//! Month by month, each network executes *change events*: an operator (or an
//! automation account) performs one semantic operation family across one or
//! more devices within a few minutes. After every per-device mutation the
//! device "reports" its new configuration, which is rendered to text and
//! archived as a snapshot with login metadata — the exact trail the
//! inference pipeline later mines (§2.1 of the paper).
//!
//! Alongside the observable trail, the simulator records the *ground truth*
//! per network-month (realized events, change types, event sizes, ACL and
//! interface fractions) and draws incident tickets from the
//! [`HealthModel`]'s Poisson rate, plus planned-maintenance tickets that the
//! inference layer must exclude.

use crate::health::{HealthModel, TrueMonthly, TrueStatics};
use crate::netgen::GeneratedNetwork;
use crate::profile::{NetworkProfile, OpKind};
use mpa_config::chunk::{self, ChunkKey};
use mpa_config::semantic::{AclRule, DeviceConfig};
use mpa_config::snapshot::Login;
use mpa_config::typemap::ChangeType;
use mpa_config::{render_config_into, ArchiveBuilder, RenderCache, SnapshotArchive};
use mpa_model::device::Dialect;
use mpa_model::{
    DeviceId, Role, StudyPeriod, Ticket, TicketId, TicketKind, TicketSeverity, Timestamp,
};
use mpa_obs::phases;
use mpa_stats::Sampler;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which rendering engine produces the archived snapshot text.
///
/// Both modes produce **byte-identical archives**: delta mode re-renders
/// only the chunks an op dirtied (see [`mpa_config::chunk`]) and emits
/// interned line-id sequences straight into the [`ArchiveBuilder`], while
/// full mode renders every device document from scratch on every snapshot.
/// Full mode is retained as the equivalence oracle (`--gen-mode full`),
/// mirroring the inference layer's `InferMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenMode {
    /// Render the whole document for every snapshot — the original path,
    /// O(fleet size) per change, kept as the oracle.
    Full,
    /// Re-render only dirty chunks and splice interned line ids (the
    /// default): generation cost proportional to changed bytes.
    #[default]
    Delta,
}

impl GenMode {
    /// Parse a CLI flag value (`"full"` / `"delta"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(Self::Full),
            "delta" => Some(Self::Delta),
            _ => None,
        }
    }

    /// The flag spelling, for reports and usage text.
    pub fn label(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Delta => "delta",
        }
    }
}

/// Live rendered document of one device in delta mode: the render-cache
/// slot of every non-empty chunk, the total byte length, and the chunk
/// keys ops have dirtied since the last archived snapshot (dirt survives
/// unlogged months — ops still mutate configs then).
#[derive(Debug, Default)]
struct LiveDoc {
    /// Chunk key → [`RenderCache`] slot, sorted — iteration is document
    /// order, so concatenating slot ids reproduces the full render.
    chunks: BTreeMap<ChunkKey, u32>,
    /// Total byte length of the document (sum of slot text lengths).
    text_len: usize,
    /// Chunks whose text may have changed since the last flush.
    dirty: BTreeSet<ChunkKey>,
}

/// Per-network delta-generation state: one render cache shared by all of
/// the network's devices (their chunk texts overlap heavily) plus each
/// device's live document.
struct LiveState {
    cache: RenderCache,
    docs: HashMap<DeviceId, LiveDoc>,
    scratch: String,
}

impl LiveState {
    fn new() -> Self {
        Self { cache: RenderCache::new(), docs: HashMap::new(), scratch: String::new() }
    }

    /// Flush `dev`'s dirty chunks (in sorted order — *document* order, so
    /// first-appearance interning matches a full render byte for byte)
    /// and record the resulting id sequence as one snapshot.
    fn record(
        &mut self,
        builder: &mut ArchiveBuilder,
        cfg: &DeviceConfig,
        dev: DeviceId,
        time: Timestamp,
        login: Login,
    ) {
        let doc = self.docs.entry(dev).or_default();
        for key in std::mem::take(&mut doc.dirty) {
            mpa_obs::counters::GEN_SPLICE_OPS.incr();
            self.scratch.clear();
            chunk::render_chunk(cfg, &key, &mut self.scratch);
            if self.scratch.is_empty() {
                if let Some(old) = doc.chunks.remove(&key) {
                    doc.text_len -= self.cache.text_len(old);
                }
            } else {
                let slot = self.cache.slot_for(builder, &self.scratch);
                doc.text_len += self.cache.text_len(slot);
                if let Some(old) = doc.chunks.insert(key, slot) {
                    doc.text_len -= self.cache.text_len(old);
                }
            }
        }
        let (cache, chunks) = (&self.cache, &doc.chunks);
        builder.record_lines_with(dev, time, login, doc.text_len, |ids| {
            for &slot in chunks.values() {
                ids.extend_from_slice(cache.ids(slot));
            }
        });
    }
}

/// Ground truth for one (network, month): the realized practice values the
/// health model consumed, its rate, and the incident count drawn from it.
/// Available to validation tests and EXPERIMENTS.md only — never to the
/// inference pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthTruth {
    /// Network.
    pub network: mpa_model::NetworkId,
    /// Month index within the study period.
    pub month: usize,
    /// Whether logging was intact this month (false → the case is dropped
    /// from inference).
    pub logged: bool,
    /// Realized change events.
    pub n_events: u32,
    /// Realized per-device configuration changes (sum of event sizes).
    pub n_device_changes: u32,
    /// Distinct vendor-agnostic change types touched.
    pub n_change_types: u32,
    /// Which change types were touched, sorted (feeds the scenario
    /// coverage report's `change_type` dimension).
    pub change_types: Vec<ChangeType>,
    /// Mean devices per event (0 when no events).
    pub avg_event_size: f64,
    /// Fraction of events including an ACL change.
    pub frac_acl_events: f64,
    /// Fraction of events including an interface change (dialect-dependent
    /// for VLAN membership moves — the paper's cross-vendor caveat).
    pub frac_iface_events: f64,
    /// Fraction of events touching a middlebox device.
    pub frac_mbox_events: f64,
    /// Fraction of events executed by an automation account.
    pub frac_automated: f64,
    /// The Poisson incident rate the health model produced.
    pub lambda: f64,
    /// Incident tickets drawn (excludes maintenance).
    pub incident_tickets: u32,
}

/// Output of simulating one network across the study period.
#[derive(Debug, Default)]
pub struct NetworkSimOutput {
    /// Delta-encoded snapshot archive (only logged months contribute).
    pub archive: SnapshotArchive,
    /// All tickets (incident + maintenance).
    pub tickets: Vec<Ticket>,
    /// Per-month ground truth.
    pub truth: Vec<MonthTruth>,
}

/// Simulation knobs shared across networks.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Probability a network-month's logging is incomplete.
    pub missing_month_rate: f64,
}

/// Simulate one network across the whole period, mutating its configs.
/// Renders snapshots with the default [`GenMode`].
///
/// `ticket_seq` is the organization-wide ticket id allocator.
pub fn simulate_network<R: Rng>(
    gen: &mut GeneratedNetwork,
    profile: &NetworkProfile,
    period: &StudyPeriod,
    health: &HealthModel,
    sim: SimConfig,
    ticket_seq: &mut u32,
    rng: &mut R,
) -> NetworkSimOutput {
    simulate_network_with_mode(gen, profile, period, health, sim, GenMode::default(), ticket_seq, rng)
}

/// [`simulate_network`] with an explicit snapshot-rendering mode. The two
/// modes draw identical RNG streams and produce byte-identical archives;
/// only the rendering work differs.
#[allow(clippy::too_many_arguments)]
pub fn simulate_network_with_mode<R: Rng>(
    gen: &mut GeneratedNetwork,
    profile: &NetworkProfile,
    period: &StudyPeriod,
    health: &HealthModel,
    sim: SimConfig,
    mode: GenMode,
    ticket_seq: &mut u32,
    rng: &mut R,
) -> NetworkSimOutput {
    let mut out = NetworkSimOutput::default();
    let mut builder = ArchiveBuilder::new();
    let mut live = match mode {
        GenMode::Delta => Some(LiveState::new()),
        GenMode::Full => None,
    };
    let mut rev: u64 = 0; // monotonically increasing edit revision

    let statics = TrueStatics {
        n_devices: gen.network.devices.len() as f64,
        n_models: gen
            .network
            .devices
            .iter()
            .map(|d| d.model)
            .collect::<BTreeSet<_>>()
            .len() as f64,
        n_roles: gen
            .network
            .devices
            .iter()
            .map(|d| d.role)
            .collect::<BTreeSet<_>>()
            .len() as f64,
        n_vlans: profile.n_vlans as f64,
    };

    // Archive the initial configuration of every device at t=0 so the first
    // in-study change has a predecessor to diff against. In delta mode the
    // whole document is dirty (every chunk key), so the first flush interns
    // lines in exactly full-render order.
    {
        let mut s = Sampler::new(rng);
        for d in &gen.network.devices {
            let login = Login::new(format!("op{}", s.uniform_range(0, 3)));
            let cfg = &gen.configs[&d.id];
            phases::time(&phases::GEN_RENDER, || match &mut live {
                Some(state) => {
                    let doc = state.docs.entry(d.id).or_default();
                    doc.dirty = chunk::chunk_keys(cfg).into_iter().collect();
                    state.record(&mut builder, cfg, d.id, Timestamp(0), login);
                }
                None => {
                    builder.record_with(d.id, Timestamp(0), login, |buf| {
                        render_config_into(cfg, buf);
                    });
                }
            });
        }
    }

    for month in 0..period.n_months() {
        let mut s = Sampler::new(rng);
        let logged = !s.bernoulli(sim.missing_month_rate);
        let m_start = period.month_start(month).0;
        let m_len = period.month_end(month).0 - m_start;

        // Monthly activity with multiplicative variation. The wide jitter
        // means the same network contributes both quiet and busy cases,
        // which is what gives the matched design within-population
        // contrasts to work with.
        let month_activity = profile.activity * s.log_normal(0.0, 0.45);
        let n_events = s.poisson(month_activity) as usize;

        let mut types_touched: BTreeSet<ChangeType> = BTreeSet::new();
        let mut n_device_changes = 0u32;
        let mut acl_events = 0u32;
        let mut iface_events = 0u32;
        let mut mbox_events = 0u32;
        let mut automated_events = 0u32;

        for _ in 0..n_events {
            let (kind, devices) = pick_event(gen, profile, &mut s);
            let size = devices.len() as u32;
            n_device_changes += size;

            let automated = s.bernoulli((profile.automation * kind.automation_bias()).min(0.97));
            if automated {
                automated_events += 1;
            }
            let login = if automated {
                Login::new(if s.bernoulli(0.7) { "svc-netauto" } else { "svc-deploy" })
            } else {
                Login::new(format!("op{}", s.uniform_range(0, 5)))
            };

            // Event start; device changes land 1–3 minutes apart so the
            // paper's δ=5min grouping heuristic reconstructs the event.
            let t0 = m_start + s.uniform_range(0, m_len - 64);
            let mut t = t0;

            let mut event_types: BTreeSet<ChangeType> = BTreeSet::new();
            let mut touched_mbox = false;
            for (i, &dev) in devices.iter().enumerate() {
                if i > 0 {
                    t += s.uniform_range(1, 3);
                }
                let dialect = gen.configs[&dev].dialect;
                rev += 1;
                // Dirty marks accumulate even in unlogged months — the op
                // still mutates the config, and the next archived snapshot
                // must reflect every change since the previous one.
                let dirty = live
                    .as_mut()
                    .map(|state| &mut state.docs.get_mut(&dev).expect("seeded at t=0").dirty);
                apply_op(gen, dev, kind, rev, profile, dirty, &mut s);
                event_types.insert(realized_type(kind, dialect));
                let role = gen.network.device(dev).expect("member").role;
                touched_mbox |= role.is_middlebox();
                if logged {
                    let cfg = &gen.configs[&dev];
                    phases::time(&phases::GEN_RENDER, || match &mut live {
                        Some(state) => {
                            state.record(&mut builder, cfg, dev, Timestamp(t), login.clone());
                        }
                        None => {
                            builder.record_with(dev, Timestamp(t), login.clone(), |buf| {
                                render_config_into(cfg, buf);
                            });
                        }
                    });
                }
            }
            if event_types.contains(&ChangeType::Acl) {
                acl_events += 1;
            }
            if event_types.contains(&ChangeType::Interface) {
                iface_events += 1;
            }
            if touched_mbox {
                mbox_events += 1;
            }
            types_touched.extend(event_types);
        }

        let ev = n_events as f64;
        let monthly = TrueMonthly {
            n_events: ev,
            n_change_types: types_touched.len() as f64,
            avg_event_size: if n_events > 0 { f64::from(n_device_changes) / ev } else { 0.0 },
            frac_acl_events: if n_events > 0 { f64::from(acl_events) / ev } else { 0.0 },
        };

        let lambda = health.lambda(&statics, &monthly, profile.noise * s.log_normal(0.0, 0.15));
        let incidents = s.poisson(lambda) as u32;
        for _ in 0..incidents {
            let t = Timestamp(m_start + s.uniform_range(0, m_len - 1));
            let dur = s.uniform_range(20, 2_880);
            let n_dev = s.uniform_range(0, 2) as usize;
            let dev_ix = s.sample_indices(gen.network.devices.len(), n_dev.min(gen.network.devices.len()));
            *ticket_seq += 1;
            out.tickets.push(Ticket {
                id: TicketId(*ticket_seq),
                network: gen.network.id,
                kind: if s.bernoulli(0.7) { TicketKind::MonitoringAlarm } else { TicketKind::UserReport },
                opened: t,
                resolved: Some(t.plus_minutes(dur)),
                devices: dev_ix.into_iter().map(|i| gen.network.devices[i].id).collect(),
                severity: match s.weighted_choice(&[0.5, 0.35, 0.15]) {
                    0 => TicketSeverity::Low,
                    1 => TicketSeverity::Medium,
                    _ => TicketSeverity::High,
                },
                symptom: ["packet-loss", "high-latency", "device-down", "flapping-link"]
                    [s.uniform_range(0, 3) as usize]
                    .to_string(),
            });
        }
        // Planned maintenance — must be excluded by the inference layer.
        let maint = s.poisson(profile.maintenance_rate) as u32;
        for _ in 0..maint {
            let t = Timestamp(m_start + s.uniform_range(0, m_len - 1));
            *ticket_seq += 1;
            out.tickets.push(Ticket {
                id: TicketId(*ticket_seq),
                network: gen.network.id,
                kind: TicketKind::PlannedMaintenance,
                opened: t,
                resolved: Some(t.plus_minutes(s.uniform_range(60, 480))),
                devices: vec![],
                severity: TicketSeverity::Low,
                symptom: "planned-work".to_string(),
            });
        }

        out.truth.push(MonthTruth {
            network: gen.network.id,
            month,
            logged,
            n_events: n_events as u32,
            n_device_changes,
            n_change_types: types_touched.len() as u32,
            change_types: types_touched.iter().copied().collect(),
            avg_event_size: monthly.avg_event_size,
            frac_acl_events: monthly.frac_acl_events,
            frac_iface_events: if n_events > 0 { f64::from(iface_events) / ev } else { 0.0 },
            frac_mbox_events: if n_events > 0 { f64::from(mbox_events) / ev } else { 0.0 },
            frac_automated: if n_events > 0 { f64::from(automated_events) / ev } else { 0.0 },
            lambda,
            incident_tickets: incidents,
        });
    }

    // The event loop records snapshots in event order; `finish` sorts each
    // device's history into time order, drops time-adjacent duplicates (an
    // edit can exactly revert earlier state, and an NMS like RANCID only
    // commits when the text actually changed) and delta-encodes.
    out.archive = phases::time(&phases::GEN_ENCODE, || builder.finish());
    out
}

/// Choose an event's operation kind and target devices.
fn pick_event<R: Rng>(
    gen: &GeneratedNetwork,
    profile: &NetworkProfile,
    s: &mut Sampler<'_, R>,
) -> (OpKind, Vec<DeviceId>) {
    let kinds: Vec<OpKind> = profile.op_weights.iter().map(|(k, _)| *k).collect();
    let weights: Vec<f64> = profile.op_weights.iter().map(|(_, w)| *w).collect();
    let mut kind = kinds[s.weighted_choice(&weights)];
    let mut eligible = eligible_devices(gen, kind);
    if eligible.is_empty() {
        kind = OpKind::IfaceTweak;
        eligible = eligible_devices(gen, kind);
    }
    let size_target = 1 + s.poisson((profile.event_size_mean - 1.0).max(0.0)) as usize;
    let size = size_target.clamp(1, eligible.len().min(8));
    let ix = s.sample_indices(eligible.len(), size);
    (kind, ix.into_iter().map(|i| eligible[i]).collect())
}

/// Devices an operation kind can target.
fn eligible_devices(gen: &GeneratedNetwork, kind: OpKind) -> Vec<DeviceId> {
    let by_role = |roles: &[Role]| -> Vec<DeviceId> {
        gen.network
            .devices
            .iter()
            .filter(|d| roles.contains(&d.role))
            .map(|d| d.id)
            .collect()
    };
    match kind {
        OpKind::IfaceTweak | OpKind::UserChurn | OpKind::SflowTune => {
            gen.network.devices.iter().map(|d| d.id).collect()
        }
        OpKind::QosTune => {
            let sw = by_role(&[Role::Switch]);
            if sw.is_empty() {
                gen.network.devices.iter().map(|d| d.id).collect()
            } else {
                sw
            }
        }
        OpKind::VlanMembership | OpKind::VlanLifecycle => by_role(&[Role::Switch]),
        OpKind::AclEdit => by_role(&[Role::Firewall, Role::Switch]),
        OpKind::PoolResize => by_role(&[Role::LoadBalancer, Role::Adc]),
        OpKind::BgpPeering => gen
            .network
            .devices
            .iter()
            .filter(|d| d.role == Role::Router && gen.configs[&d.id].bgp.is_some())
            .map(|d| d.id)
            .collect(),
        OpKind::OspfAdvertise => gen
            .network
            .devices
            .iter()
            .filter(|d| d.role == Role::Router && gen.configs[&d.id].ospf.is_some())
            .map(|d| d.id)
            .collect(),
    }
}

/// The vendor-agnostic change type an operation produces on a device of the
/// given dialect. VLAN membership moves are the paper's cross-vendor quirk:
/// an *interface* change on the block-keyword dialect, a *vlan* change on
/// the brace dialect.
fn realized_type(kind: OpKind, dialect: Dialect) -> ChangeType {
    match kind {
        OpKind::IfaceTweak => ChangeType::Interface,
        OpKind::VlanMembership => match dialect {
            Dialect::BlockKeyword => ChangeType::Interface,
            Dialect::BraceHierarchy => ChangeType::Vlan,
        },
        OpKind::VlanLifecycle => ChangeType::Vlan,
        OpKind::AclEdit => ChangeType::Acl,
        OpKind::PoolResize => ChangeType::Pool,
        OpKind::UserChurn => ChangeType::User,
        OpKind::BgpPeering | OpKind::OspfAdvertise => ChangeType::Router,
        OpKind::SflowTune => ChangeType::Sflow,
        OpKind::QosTune => ChangeType::Qos,
    }
}

/// Uniformly pick an element of `xs`: the same single `uniform_range`
/// draw as indexing by hand (seed streams are unchanged), but bounds-safe
/// — `None` on an empty slice instead of a panic.
fn pick<'a, T, R: Rng>(s: &mut Sampler<'_, R>, xs: &'a [T]) -> Option<&'a T> {
    let last = xs.len().checked_sub(1)?;
    xs.get(s.uniform_range(0, last as u64) as usize)
}

/// Apply one semantic operation to one device. Every branch is guaranteed to
/// actually modify the rendered config (the `rev` counter provides fresh
/// values), so a simulated change never silently diffs to nothing.
///
/// In delta mode, `dirty` collects the chunk keys whose rendered text may
/// have changed (`None` in full mode — the marks then cost nothing). The
/// marks must *cover* each branch's mutation; `tests/proptest_chunks.rs`
/// in `mpa-config` property-tests exactly this mark-per-mutator mapping.
fn apply_op<R: Rng>(
    gen: &mut GeneratedNetwork,
    dev: DeviceId,
    kind: OpKind,
    rev: u64,
    profile: &NetworkProfile,
    mut dirty: Option<&mut BTreeSet<ChunkKey>>,
    s: &mut Sampler<'_, R>,
) {
    let next_port = *gen.next_port.get(&dev).expect("registered");
    let cfg = gen.configs.get_mut(&dev).expect("device config exists");
    let dl = cfg.dialect;
    match kind {
        OpKind::IfaceTweak => {
            let port = if next_port > 1 { s.uniform_range(1, u64::from(next_port) - 1) as u16 } else { 1 };
            if s.bernoulli(0.7) {
                cfg.set_description(port, format!("maintenance rev {rev}"));
            } else {
                cfg.set_mtu(port, match rev % 3 { 0 => 1500u16, 1 => 4000, _ => 9000 });
                // MTU may coincide with the current value; stamp the
                // description too so the change is always observable.
                cfg.set_description(port, format!("mtu change rev {rev}"));
            }
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_iface(dl, port, d);
            }
        }
        OpKind::VlanMembership => {
            let port = if next_port > 1 { s.uniform_range(1, u64::from(next_port) - 1) as u16 } else { 1 };
            let pool_size = profile.n_vlans.max(1) as u64;
            let mut vlan = (10 + 10 * s.uniform_range(0, pool_size - 1)) as u16;
            let old = cfg.interfaces.get(&port).and_then(|i| i.access_vlan);
            if old == Some(vlan) {
                vlan = if vlan >= 20 { vlan - 10 } else { vlan + 10 };
            }
            cfg.assign_interface_vlan(port, vlan);
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_iface(dl, port, d);
                chunk::mark_vlan(dl, vlan, d);
                if let Some(old) = old {
                    chunk::mark_vlan(dl, old, d);
                }
            }
        }
        OpKind::VlanLifecycle => {
            // Alternate between creating fresh VLANs and retiring dynamic
            // ones; never retire the network's base VLAN pool.
            let dynamic: Vec<u16> = cfg.vlans.keys().copied().filter(|v| *v >= 2000).collect();
            if !dynamic.is_empty() && s.bernoulli(0.45) {
                let Some(&victim) = pick(s, &dynamic) else { return };
                // Member list *before* removal: `remove_vlan` detaches the
                // member interfaces, and their chunks change with it.
                let members =
                    if dirty.is_some() { cfg.vlan_members(victim) } else { Vec::new() };
                cfg.remove_vlan(victim);
                if let Some(d) = dirty.as_deref_mut() {
                    chunk::mark_vlan(dl, victim, d);
                    for port in members {
                        chunk::mark_iface(dl, port, d);
                    }
                }
            } else {
                // `add_vlan` is idempotent; probe for an id not yet in use so
                // the snapshot is never a no-op.
                let mut vlan = 2000 + (rev % 1900) as u16;
                while cfg.vlans.contains_key(&vlan) {
                    vlan = if vlan >= 3899 { 2000 } else { vlan + 1 };
                }
                cfg.add_vlan(vlan);
                if let Some(d) = dirty.as_deref_mut() {
                    chunk::mark_vlan(dl, vlan, d);
                }
            }
        }
        OpKind::AclEdit => {
            let names: Vec<String> = cfg.acls.keys().cloned().collect();
            if names.is_empty() {
                let name = format!("acl-dyn-{}", dev.0);
                cfg.acl_add_rule(
                    &name,
                    AclRule { permit: true, protocol: "tcp".into(), port: 443 },
                );
                if let Some(d) = dirty.as_deref_mut() {
                    chunk::mark_acl(dl, &name, d);
                }
            } else {
                let Some(name) = pick(s, &names) else { return };
                let n_rules = cfg.acls[name].rules.len();
                if n_rules > 3 && s.bernoulli(0.4) {
                    cfg.acl_remove_rule(name, s.uniform_range(0, n_rules as u64 - 1) as usize);
                } else {
                    cfg.acl_add_rule(
                        name,
                        AclRule {
                            permit: s.bernoulli(0.7),
                            protocol: if s.bernoulli(0.8) { "tcp".into() } else { "udp".into() },
                            // Fresh high port: guaranteed-new rule text.
                            port: 10_000 + (rev % 50_000) as u16,
                        },
                    );
                }
                if let Some(d) = dirty.as_deref_mut() {
                    chunk::mark_acl(dl, name, d);
                }
            }
        }
        OpKind::PoolResize => {
            let names: Vec<String> = cfg.pools.keys().cloned().collect();
            let name = match pick(s, &names) {
                Some(n) => n.clone(),
                None => {
                    let n = format!("pool-dyn-{}", dev.0);
                    cfg.add_pool(&n, "tcp");
                    n
                }
            };
            let members: Vec<String> = cfg
                .pools
                .get(&name)
                .map_or_else(Vec::new, |p| p.members.iter().cloned().collect());
            if members.len() > 2 && s.bernoulli(0.45) {
                let Some(victim) = pick(s, &members) else { return };
                cfg.pool_remove_member(&name, victim);
            } else {
                // Probe for an endpoint not already in the set (members is a
                // set, so re-inserting an existing one would be a no-op).
                let mut k = rev;
                let member = loop {
                    let candidate =
                        format!("192.168.{}.{}:{}", 200 + k % 55, k % 250, 400 + k % 600);
                    if !cfg.pools.get(&name).is_some_and(|p| p.members.contains(&candidate)) {
                        break candidate;
                    }
                    k += 7919;
                };
                cfg.pool_add_member(&name, &member);
            }
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_pool(dl, &name, d);
            }
        }
        OpKind::UserChurn => {
            let temps: Vec<String> =
                cfg.users.keys().filter(|u| u.starts_with("tmp")).cloned().collect();
            let name = if !temps.is_empty() && s.bernoulli(0.5) {
                let Some(victim) = pick(s, &temps).cloned() else { return };
                cfg.remove_user(&victim);
                victim
            } else {
                let name = format!("tmp{rev}");
                cfg.add_user(&name, "contractor");
                name
            };
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_user(dl, &name, d);
            }
        }
        OpKind::BgpPeering => {
            let local_as = cfg.bgp.as_ref().map_or(65_000, |b| b.local_as);
            let externals: Vec<String> = cfg
                .bgp
                .as_ref()
                .map(|b| {
                    b.neighbors
                        .keys()
                        .filter(|ip| ip.starts_with("172.17."))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            if !externals.is_empty() && s.bernoulli(0.4) {
                let Some(victim) = pick(s, &externals) else { return };
                cfg.bgp_remove_neighbor(victim);
            } else {
                // Probe for a peer address not already configured so the
                // neighbor map insert is never a no-op.
                let mut k = rev;
                let ip = loop {
                    let candidate = format!("172.17.{}.{}", k % 250, 1 + k % 200);
                    let exists = cfg
                        .bgp
                        .as_ref()
                        .is_some_and(|b| b.neighbors.contains_key(&candidate));
                    if !exists {
                        break candidate;
                    }
                    k += 7919;
                };
                cfg.bgp_add_neighbor(local_as, &ip, 64_600 + (rev % 100) as u32);
            }
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_bgp(dl, d);
            }
        }
        OpKind::OspfAdvertise => {
            // Derive the prefix from the advertisement count, which only
            // grows, so each advertisement is genuinely new.
            let adv = cfg.ospf.as_ref().map_or(0, |o| o.networks.len());
            cfg.ospf_advertise(1, &format!("10.{}.{}.0/24", 200 + adv / 250, adv % 250));
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_ospf(dl, d);
            }
        }
        OpKind::SflowTune => {
            let rate = 512u32 << (rev % 4);
            let collector = cfg
                .sflow
                .as_ref()
                .map_or_else(|| "192.0.2.9".to_string(), |sf| sf.collector.clone());
            // Guarantee a change even when the rotated rate collides.
            let rate = if cfg.sflow.as_ref().is_some_and(|sf| sf.rate == rate) { rate + 1 } else { rate };
            cfg.set_sflow(collector, rate);
            if let Some(d) = dirty.as_deref_mut() {
                chunk::mark_sflow(dl, d);
            }
        }
        OpKind::QosTune => {
            let mut dscp = (rev % 63) as u8;
            if cfg.qos.get("voice").is_some_and(|q| q.dscp == dscp) {
                dscp = (dscp + 1) % 63;
            }
            cfg.set_qos_class("voice", dscp);
            if let Some(d) = dirty {
                chunk::mark_qos(dl, "voice", d);
            }
        }
    }
    // Ports may have been implicitly created; keep the allocator ahead.
    let max_port = cfg.interfaces.keys().max().copied().unwrap_or(0);
    let np = gen.next_port.get_mut(&dev).expect("registered");
    if *np <= max_port {
        *np = max_port + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::generate_network;
    use crate::profile::{sample_profiles, OrgConfig};
    use mpa_config::{diff_configs, parse_config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn org() -> OrgConfig {
        OrgConfig {
            seed: 23,
            n_networks: 12,
            n_months: 3,
            n_services: 20,
            missing_month_rate: 0.15,
            noise_sigma: 0.45,
        }
    }

    fn run_one_with(mode: GenMode) -> (GeneratedNetwork, NetworkSimOutput) {
        let cfg = org();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        // Pick a profile with decent activity so the test is meaningful.
        let profile = profiles
            .iter()
            .max_by(|a, b| a.activity.total_cmp(&b.activity))
            .unwrap()
            .clone();
        let mut next_id = 0u32;
        let mut gen = generate_network(&profile, &mut next_id, &mut rng);
        let period = StudyPeriod::new(mpa_model::Month::new(2013, 8).unwrap(), cfg.n_months);
        let mut ticket_seq = 0;
        let out = simulate_network_with_mode(
            &mut gen,
            &profile,
            &period,
            &HealthModel::default(),
            SimConfig { missing_month_rate: cfg.missing_month_rate },
            mode,
            &mut ticket_seq,
            &mut rng,
        );
        (gen, out)
    }

    fn run_one() -> (GeneratedNetwork, NetworkSimOutput) {
        run_one_with(GenMode::default())
    }

    #[test]
    fn snapshots_are_ordered_and_parseable() {
        let (gen, out) = run_one();
        assert!(out.archive.n_snapshots() >= gen.network.devices.len());
        for d in &gen.network.devices {
            let metas = out.archive.device_metas(d.id);
            assert!(metas.windows(2).all(|w| w[0].time <= w[1].time), "{}", d.hostname());
            for text in out.archive.device_texts(d.id) {
                parse_config(&text, d.dialect()).expect("snapshot parses");
            }
        }
    }

    #[test]
    fn successive_snapshots_actually_differ() {
        let (gen, out) = run_one();
        let mut checked = 0;
        for d in &gen.network.devices {
            let texts = out.archive.device_texts(d.id);
            let metas = out.archive.device_metas(d.id);
            for i in 1..texts.len() {
                let old = parse_config(&texts[i - 1], d.dialect()).unwrap();
                let new = parse_config(&texts[i], d.dialect()).unwrap();
                assert!(
                    !diff_configs(&old, &new).is_empty(),
                    "no-op snapshot on {} at {}",
                    d.hostname(),
                    metas[i].time
                );
                checked += 1;
            }
        }
        assert!(checked > 20, "too few snapshot pairs exercised: {checked}");
    }

    #[test]
    fn truth_covers_every_month_and_is_internally_consistent() {
        let (_, out) = run_one();
        assert_eq!(out.truth.len(), 3);
        for t in &out.truth {
            assert!(t.frac_acl_events <= 1.0 && t.frac_acl_events >= 0.0);
            assert!(t.frac_iface_events <= 1.0);
            assert!(t.frac_automated <= 1.0);
            if t.n_events > 0 {
                assert!(t.avg_event_size >= 1.0);
                assert!(t.n_device_changes >= t.n_events);
                assert!(t.n_change_types >= 1);
            } else {
                assert_eq!(t.n_device_changes, 0);
            }
            assert!(t.lambda > 0.0);
        }
    }

    #[test]
    fn tickets_include_maintenance_and_incidents() {
        // Across several networks there should be both kinds.
        let cfg = org();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        let period = StudyPeriod::new(mpa_model::Month::new(2013, 8).unwrap(), cfg.n_months);
        let mut next_id = 0u32;
        let mut ticket_seq = 0;
        let mut incident = 0;
        let mut maint = 0;
        for p in &profiles {
            let mut gen = generate_network(p, &mut next_id, &mut rng);
            let out = simulate_network(
                &mut gen,
                p,
                &period,
                &HealthModel::default(),
                SimConfig { missing_month_rate: 0.15 },
                &mut ticket_seq,
                &mut rng,
            );
            for t in &out.tickets {
                if t.kind.counts_toward_health() {
                    incident += 1;
                } else {
                    maint += 1;
                }
            }
        }
        assert!(incident > 10, "incidents: {incident}");
        assert!(maint > 5, "maintenance: {maint}");
    }

    #[test]
    fn event_devices_cluster_within_five_minutes() {
        let (_, out) = run_one();
        // Per-event inter-device gaps are 1–3 min; with ≤8 devices the span
        // stays well under the 5-minute chaining threshold per hop. Verify
        // by checking that consecutive snapshot times of multi-device bursts
        // never exceed 3 minutes within a burst... simplest proxy: there is
        // at least one pair of snapshots on *different* devices within 3
        // minutes (i.e., multi-device events exist at all).
        let mut times: Vec<(u64, DeviceId)> = out
            .archive
            .devices()
            .flat_map(|d| out.archive.device_metas(d).iter().map(|m| (m.time.0, m.device)))
            .collect();
        times.sort_unstable();
        let close_cross_device = times
            .windows(2)
            .any(|w| w[1].0 - w[0].0 <= 3 && w[0].1 != w[1].1 && w[0].0 > 0);
        assert!(close_cross_device, "no multi-device change events observed");
    }

    #[test]
    fn realized_type_encodes_the_cross_vendor_quirk() {
        assert_eq!(
            realized_type(OpKind::VlanMembership, Dialect::BlockKeyword),
            ChangeType::Interface
        );
        assert_eq!(
            realized_type(OpKind::VlanMembership, Dialect::BraceHierarchy),
            ChangeType::Vlan
        );
        assert_eq!(realized_type(OpKind::AclEdit, Dialect::BlockKeyword), ChangeType::Acl);
    }

    #[test]
    fn gen_modes_produce_byte_identical_archives() {
        let (_, delta) = run_one_with(GenMode::Delta);
        let (_, full) = run_one_with(GenMode::Full);
        assert_eq!(delta.archive, full.archive, "structural divergence between gen modes");
        assert_eq!(
            serde_json::to_string(&delta.archive).unwrap(),
            serde_json::to_string(&full.archive).unwrap(),
            "serde bytes diverged between gen modes"
        );
        // Same RNG consumption: the rest of the output matches too.
        assert_eq!(format!("{:?}", delta.truth), format!("{:?}", full.truth));
        assert_eq!(delta.tickets, full.tickets);
    }

    #[test]
    fn gen_mode_parse_round_trips() {
        assert_eq!(GenMode::parse("delta"), Some(GenMode::Delta));
        assert_eq!(GenMode::parse("full"), Some(GenMode::Full));
        assert_eq!(GenMode::parse("chunky"), None);
        assert_eq!(GenMode::default(), GenMode::Delta);
        for m in [GenMode::Delta, GenMode::Full] {
            assert_eq!(GenMode::parse(m.label()), Some(m));
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let (_, out) = run_one();
            (out.archive.n_snapshots(), out.tickets.len(), format!("{:?}", out.truth))
        };
        assert_eq!(run(), run());
    }
}
