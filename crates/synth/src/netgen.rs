//! Materializing a [`NetworkProfile`] into devices, topology and initial
//! configurations.
//!
//! The generator works bottom-up: role mix → device records (model/firmware
//! sampled per the profile's heterogeneity knobs) → physical topology
//! (router chain backbone, switches and middleboxes attached) → per-device
//! semantic configurations (links, VLANs, ACLs, routing instances, pools).
//!
//! Everything downstream — inventory records, config snapshots — derives
//! from this state.

use crate::catalog;
use crate::profile::NetworkProfile;
use mpa_config::addr::{device_loopback, pool_member_addr};
use mpa_config::semantic::{AclRule, DeviceConfig};
use mpa_model::{
    Device, DeviceId, Firmware, Link, Network, NetworkPurpose, Role, Topology, Workload,
};
use mpa_stats::Sampler;
use rand::Rng;
use std::collections::BTreeMap;

/// A generated network: the model-layer [`Network`] plus the semantic
/// configuration of every member device and a per-device port allocator.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    /// Inventory-facing network object.
    pub network: Network,
    /// Semantic config per device (the simulator mutates these).
    pub configs: BTreeMap<DeviceId, DeviceConfig>,
    /// Next free port number per device (ops allocate new ports from here).
    pub next_port: BTreeMap<DeviceId, u16>,
}

/// The role mix of a network: the first draws of network generation.
///
/// Factored out so [`device_count`] can replay exactly these draws from a
/// fresh per-network RNG stream without materializing the network.
fn role_mix<R: Rng>(profile: &NetworkProfile, s: &mut Sampler<R>) -> Vec<Role> {
    let n = if profile.interconnect { profile.n_devices.clamp(2, 24) } else { profile.n_devices };
    let mut roles: Vec<Role> = Vec::with_capacity(n);
    if profile.interconnect {
        roles.extend(std::iter::repeat_n(Role::Router, n));
    } else {
        // Router count is a *noisy* function of size: organizations vary in
        // how much routing capacity they provision, so routing metrics do
        // not deterministically encode network size.
        let n_routers = (s.poisson(n as f64 / 10.0) as usize).clamp(1, (n / 3).max(1));
        let (n_fw, n_lb, n_adc) = if profile.wants_middlebox() {
            ((n / 25).max(1), (n / 30).max(1), n / 40)
        } else {
            (0, 0, 0)
        };
        let n_switches = n.saturating_sub(n_routers + n_fw + n_lb + n_adc).max(1);
        roles.extend(std::iter::repeat_n(Role::Router, n_routers));
        roles.extend(std::iter::repeat_n(Role::Switch, n_switches));
        roles.extend(std::iter::repeat_n(Role::Firewall, n_fw));
        roles.extend(std::iter::repeat_n(Role::LoadBalancer, n_lb));
        roles.extend(std::iter::repeat_n(Role::Adc, n_adc));
    }
    roles
}

/// How many devices [`generate_network`] will create for this profile, given
/// a fresh RNG seeded with the network's stream seed.
///
/// Used by the parallel generation path to pre-assign each network a dense
/// contiguous device-id range: the count depends on RNG draws (the role
/// mix), so it cannot be read off the profile alone, and ids must stay
/// dense because the `10.H.L.1` loopback address plan caps them at 65535.
pub fn device_count<R: Rng>(profile: &NetworkProfile, rng: &mut R) -> usize {
    let mut s = Sampler::new(rng);
    role_mix(profile, &mut s).len()
}

/// Generate a network from its profile. `next_device_id` is the
/// organization-wide device id allocator.
pub fn generate_network<R: Rng>(
    profile: &NetworkProfile,
    next_device_id: &mut u32,
    rng: &mut R,
) -> GeneratedNetwork {
    let mut s = Sampler::new(rng);
    let net_id = profile.id;

    // ---- role mix --------------------------------------------------------
    let roles = role_mix(profile, &mut s);

    // ---- per-role model palettes (heterogeneity) --------------------------
    // For each role: how many (vendor, generation) combinations are in use.
    let mut palettes: BTreeMap<Role, Vec<(mpa_model::Vendor, usize)>> = BTreeMap::new();
    for role in Role::ALL {
        if !roles.contains(&role) {
            continue;
        }
        let vendors = catalog::vendors_for_role(role);
        let max_combos = vendors.len() * 4;
        let k = (1.0 + profile.heterogeneity * s.uniform() * (max_combos as f64 - 1.0))
            .round()
            .clamp(1.0, max_combos as f64) as usize;
        let mut combos: Vec<(mpa_model::Vendor, usize)> = Vec::new();
        // Preference order: standard vendor, generation 0 first.
        'outer: for generation in 0..4 {
            for &v in vendors {
                combos.push((v, generation));
                if combos.len() == k {
                    break 'outer;
                }
            }
        }
        palettes.insert(role, combos);
    }

    // ---- devices -----------------------------------------------------------
    let mut devices: Vec<Device> = Vec::with_capacity(roles.len());
    for &role in &roles {
        let id = DeviceId(*next_device_id);
        *next_device_id += 1;
        let palette = &palettes[&role];
        // Weight toward the first (standard) combo so heterogeneity stays
        // moderate for most networks.
        let weights: Vec<f64> =
            (0..palette.len()).map(|i| 1.0 / (1.0 + i as f64).powf(0.8)).collect();
        let (vendor, generation) = palette[s.weighted_choice(&weights)];
        let model = catalog::model(vendor, role, generation);
        let trains = catalog::firmware_trains(model);
        let firmware: Firmware = if s.bernoulli(profile.firmware_discipline) {
            trains[0]
        } else {
            trains[s.uniform_range(0, trains.len() as u64 - 1) as usize]
        };
        devices.push(Device { id, network: net_id, model, role, firmware });
    }

    let routers: Vec<DeviceId> =
        devices.iter().filter(|d| d.role == Role::Router).map(|d| d.id).collect();
    let switches: Vec<DeviceId> =
        devices.iter().filter(|d| d.role == Role::Switch).map(|d| d.id).collect();
    let middleboxes: Vec<DeviceId> =
        devices.iter().filter(|d| d.role.is_middlebox()).map(|d| d.id).collect();

    // ---- topology -----------------------------------------------------------
    let mut topology = Topology::new();
    // Router chain backbone (a chain keeps OSPF instance separation
    // controllable: a non-OSPF router splits the adjacency graph). Switch-
    // only networks chain their switches instead.
    for w in routers.windows(2) {
        topology.add_link(Link::new(w[0], w[1]));
    }
    if routers.is_empty() {
        for w in switches.windows(2) {
            topology.add_link(Link::new(w[0], w[1]));
        }
    } else {
        for &sw in &switches {
            let r = routers[s.uniform_range(0, routers.len() as u64 - 1) as usize];
            topology.add_link(Link::new(sw, r));
        }
    }
    // Some switch-switch redundancy.
    for i in 1..switches.len() {
        if s.bernoulli(0.3) {
            let j = s.uniform_range(0, i as u64 - 1) as usize;
            topology.add_link(Link::new(switches[i], switches[j]));
        }
    }
    for &mb in &middleboxes {
        let r = routers[s.uniform_range(0, routers.len() as u64 - 1) as usize];
        topology.add_link(Link::new(mb, r));
    }

    // ---- configs ---------------------------------------------------------------
    let mut configs: BTreeMap<DeviceId, DeviceConfig> = BTreeMap::new();
    let mut next_port: BTreeMap<DeviceId, u16> = BTreeMap::new();
    let by_id: BTreeMap<DeviceId, &Device> = devices.iter().map(|d| (d.id, d)).collect();
    for d in &devices {
        let mut c = DeviceConfig::new(d.hostname(), d.dialect());
        c.ntp_servers.push("192.0.2.1".into());
        c.snmp_community = Some("ops".into());
        let n_users = s.uniform_range(1, 3);
        for u in 0..n_users {
            c.add_user(format!("op{u}"), "operator");
        }
        configs.insert(d.id, c);
        next_port.insert(d.id, 1);
    }

    // Link interfaces with peer descriptions on both ends.
    let links: Vec<Link> = topology.links().copied().collect();
    for link in &links {
        for (end, peer) in [(link.a, link.b), (link.b, link.a)] {
            let port = alloc_port(&mut next_port, end);
            let peer_host = by_id[&peer].hostname();
            configs
                .get_mut(&end)
                .expect("device config exists")
                .set_description(port, format!("link to {peer_host}"));
        }
    }

    // Access ports on switches.
    for &sw in &switches {
        let extra = s.uniform_range(2, 8);
        for _ in 0..extra {
            let port = alloc_port(&mut next_port, sw);
            configs.get_mut(&sw).expect("exists").set_description(port, "access port");
        }
    }

    // VLANs spread across switches (each VLAN hosted by 1–3 switches). The
    // per-network wiring density scales member-port counts: VLAN-rich,
    // densely-wired networks accumulate many interface→VLAN references,
    // which is what drives the intra-device complexity metric — noisily, so
    // complexity is a *proxy* of VLAN count rather than a copy of it.
    if !switches.is_empty() {
        let wiring_density = s.log_normal(0.0, 0.55);
        for v in 0..profile.n_vlans {
            let vlan_id = (10 + v as u16 * 10).min(4000);
            let hosts = s.uniform_range(1, 3.min(switches.len() as u64)) as usize;
            let host_ix = s.sample_indices(switches.len(), hosts);
            for hi in host_ix {
                let sw = switches[hi];
                let cfg = configs.get_mut(&sw).expect("exists");
                cfg.add_vlan(vlan_id);
                let base = 1.0 + profile.n_vlans as f64 / 18.0;
                let members = ((base * wiring_density * s.uniform_range(1, 2) as f64).round()
                    as u64)
                    .clamp(1, 12);
                for _ in 0..members {
                    let port = alloc_port(&mut next_port, sw);
                    cfg.assign_interface_vlan(port, vlan_id);
                }
            }
        }
    }

    // L2 features.
    for d in &devices {
        let cfg = configs.get_mut(&d.id).expect("exists");
        match d.role {
            Role::Switch => {
                cfg.features.spanning_tree = profile.use_stp;
                cfg.features.lacp = profile.use_lacp;
                cfg.features.udld = profile.use_udld;
                cfg.features.dhcp_relay = profile.use_dhcp_relay;
            }
            Role::Router => {
                cfg.features.udld = profile.use_udld;
            }
            _ => {}
        }
    }

    // ACLs: firewalls always; some switches.
    let mut acl_seq = 0usize;
    for d in &devices {
        let wants_acl = match d.role {
            Role::Firewall => true,
            Role::Switch => s.bernoulli(0.3),
            _ => false,
        };
        if !wants_acl {
            continue;
        }
        let cfg = configs.get_mut(&d.id).expect("exists");
        let n_acls = if d.role == Role::Firewall { s.uniform_range(2, 4) } else { 1 };
        for _ in 0..n_acls {
            let name = format!("acl-{acl_seq}");
            acl_seq += 1;
            let n_rules = s.uniform_range(2, 6);
            for _ in 0..n_rules {
                let rule = AclRule {
                    permit: s.bernoulli(0.7),
                    protocol: if s.bernoulli(0.8) { "tcp".into() } else { "udp".into() },
                    port: [22, 53, 80, 123, 443, 8080][s.uniform_range(0, 5) as usize],
                };
                cfg.acl_add_rule(&name, rule);
            }
            let port = alloc_port(&mut next_port, d.id);
            cfg.set_description(port, "filtered port");
            cfg.apply_acl(port, &name);
        }
    }

    // BGP: routers partitioned into instance groups; iBGP mesh (or
    // hub-and-ring for large groups) over loopbacks within each group.
    if profile.use_bgp && !routers.is_empty() {
        let n_instances = profile.n_bgp_instances.clamp(1, routers.len());
        let local_as = 65_000 + (net_id.0 % 1_000);
        let groups = partition(&routers, n_instances);
        for group in &groups {
            mesh_bgp(&mut configs, group, local_as);
        }
        // Edge router peers externally.
        let edge = routers[0];
        let n_ext = s.uniform_range(1, 2);
        for e in 0..n_ext {
            configs.get_mut(&edge).expect("exists").bgp_add_neighbor(
                local_as,
                &format!("172.16.{}.{}", net_id.0 % 256, e + 1),
                64_512 + e as u32,
            );
        }
    }

    // OSPF: instance separation via a gap router on the chain.
    if profile.use_ospf && !routers.is_empty() {
        let want_two = profile.n_ospf_instances >= 2 && routers.len() >= 4;
        let segments: Vec<&[DeviceId]> = if want_two {
            let cut = routers.len() / 2;
            // Skip routers[cut]: it runs no OSPF, splitting the chain.
            vec![&routers[..cut], &routers[cut + 1..]]
        } else {
            vec![&routers[..]]
        };
        for (gi, seg) in segments.iter().enumerate() {
            for &r in *seg {
                configs
                    .get_mut(&r)
                    .expect("exists")
                    .ospf_advertise(1, &format!("10.{}.{gi}.0/24", net_id.0 % 200));
            }
        }
    }

    // Pools on load balancers and ADCs.
    let mut pool_seq = 0usize;
    for d in &devices {
        if !matches!(d.role, Role::LoadBalancer | Role::Adc) {
            continue;
        }
        let cfg = configs.get_mut(&d.id).expect("exists");
        let n_pools = s.uniform_range(1, 4);
        for _ in 0..n_pools {
            let name = format!("pool-{pool_seq}");
            pool_seq += 1;
            cfg.add_pool(&name, if s.bernoulli(0.6) { "http" } else { "tcp" });
            let n_members = s.uniform_range(2, 16);
            let subnet = (pool_seq % 250) as u8;
            for m in 0..n_members {
                cfg.pool_add_member(&name, &format!("{}:{}", pool_member_addr(subnet, m as u8), 443));
            }
        }
    }

    // Telemetry & QoS (present on a subset; the simulator may tune them).
    if s.bernoulli(0.5) {
        for d in &devices {
            if matches!(d.role, Role::Switch | Role::Router) {
                configs.get_mut(&d.id).expect("exists").set_sflow("192.0.2.9", 2048);
            }
        }
    }
    if s.bernoulli(0.4) {
        for d in &devices {
            if d.role == Role::Switch {
                configs.get_mut(&d.id).expect("exists").set_qos_class("voice", 46);
            }
        }
    }

    let workloads: Vec<Workload> = profile
        .services
        .iter()
        .map(|&svc| Workload { service: svc, name: format!("svc-{svc}") })
        .collect();

    let network = Network {
        id: net_id,
        purpose: if profile.interconnect {
            NetworkPurpose::Interconnect
        } else {
            NetworkPurpose::Hosting
        },
        workloads,
        devices,
        topology,
    };
    debug_assert_eq!(network.validate(), Ok(()));

    GeneratedNetwork { network, configs, next_port }
}

fn alloc_port(next_port: &mut BTreeMap<DeviceId, u16>, dev: DeviceId) -> u16 {
    let p = next_port.get_mut(&dev).expect("device registered");
    let port = *p;
    *p += 1;
    port
}

/// Split `items` into `k` contiguous, non-empty groups (k ≤ items.len()).
fn partition<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let k = k.clamp(1, items.len().max(1));
    let base = items.len() / k;
    let extra = items.len() % k;
    let mut out = Vec::with_capacity(k);
    let mut ix = 0;
    for g in 0..k {
        let len = base + usize::from(g < extra);
        out.push(items[ix..ix + len].to_vec());
        ix += len;
    }
    out
}

/// iBGP topology within one instance group: full mesh up to 5 routers,
/// hub-and-ring beyond (keeps neighbor statements O(n), not O(n²)).
fn mesh_bgp(configs: &mut BTreeMap<DeviceId, DeviceConfig>, group: &[DeviceId], local_as: u32) {
    if group.len() == 1 {
        // Single-router instance: it still runs the process.
        configs.get_mut(&group[0]).expect("exists").enable_bgp(local_as);
        return;
    }
    let pairs: Vec<(DeviceId, DeviceId)> = if group.len() <= 5 {
        let mut v = Vec::new();
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                v.push((group[i], group[j]));
            }
        }
        v
    } else {
        let hub = group[0];
        let mut v: Vec<(DeviceId, DeviceId)> = group[1..].iter().map(|&r| (hub, r)).collect();
        for w in group[1..].windows(2) {
            v.push((w[0], w[1]));
        }
        v
    };
    for (a, b) in pairs {
        configs
            .get_mut(&a)
            .expect("exists")
            .bgp_add_neighbor(local_as, &device_loopback(b), local_as);
        configs
            .get_mut(&b)
            .expect("exists")
            .bgp_add_neighbor(local_as, &device_loopback(a), local_as);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{sample_profiles, OrgConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn org(n: usize) -> OrgConfig {
        OrgConfig {
            seed: 11,
            n_networks: n,
            n_months: 4,
            n_services: 50,
            missing_month_rate: 0.2,
            noise_sigma: 0.45,
        }
    }

    fn generate(n: usize) -> Vec<GeneratedNetwork> {
        let cfg = org(n);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        let mut next_id = 0u32;
        profiles.iter().map(|p| generate_network(p, &mut next_id, &mut rng)).collect()
    }

    #[test]
    fn networks_validate_and_have_configs_for_every_device() {
        for g in generate(40) {
            assert_eq!(g.network.validate(), Ok(()));
            assert_eq!(g.configs.len(), g.network.devices.len());
            for d in &g.network.devices {
                let cfg = &g.configs[&d.id];
                assert_eq!(cfg.hostname, d.hostname());
                assert_eq!(cfg.dialect, d.dialect());
            }
        }
    }

    #[test]
    fn device_ids_are_globally_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for g in generate(40) {
            for d in &g.network.devices {
                assert!(seen.insert(d.id), "duplicate id {:?}", d.id);
            }
        }
    }

    #[test]
    fn topology_is_connected_for_hosting_networks() {
        for g in generate(40) {
            let ids: Vec<DeviceId> = g.network.devices.iter().map(|d| d.id).collect();
            let comps = g.network.topology.components(&ids);
            assert_eq!(comps.len(), 1, "network {} disconnected", g.network.id);
        }
    }

    #[test]
    fn bgp_instance_groups_are_disjoint_components() {
        // Find a generated network with >1 BGP instance and check the
        // neighbor graph splits accordingly.
        let cfg = org(60);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        let mut next_id = 0u32;
        let mut checked = 0;
        for p in &profiles {
            let g = generate_network(p, &mut next_id, &mut rng);
            if !p.use_bgp {
                continue;
            }
            let routers: Vec<DeviceId> = g
                .network
                .devices
                .iter()
                .filter(|d| d.role == Role::Router)
                .map(|d| d.id)
                .collect();
            let expected = p.n_bgp_instances.clamp(1, routers.len());
            // Count components of the BGP neighbor graph.
            let mut neighbor_topo = Topology::new();
            for (&dev, cfgd) in &g.configs {
                if let Some(bgp) = &cfgd.bgp {
                    for ip in bgp.neighbors.keys() {
                        if let Some(peer) = mpa_config::addr::parse_loopback(ip) {
                            neighbor_topo.add_link(Link::new(dev, peer));
                        }
                    }
                }
            }
            let bgp_routers: Vec<DeviceId> = routers
                .iter()
                .copied()
                .filter(|r| g.configs[r].bgp.is_some())
                .collect();
            let comps = neighbor_topo.components(&bgp_routers);
            assert_eq!(comps.len(), expected, "network {}", g.network.id);
            checked += 1;
        }
        assert!(checked > 20, "too few BGP networks to be meaningful");
    }

    #[test]
    fn ospf_two_instance_networks_have_split_adjacency() {
        let cfg = org(80);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        let mut next_id = 0u32;
        let mut found = 0;
        for p in &profiles {
            let g = generate_network(p, &mut next_id, &mut rng);
            let routers: Vec<DeviceId> = g
                .network
                .devices
                .iter()
                .filter(|d| d.role == Role::Router)
                .map(|d| d.id)
                .collect();
            if !(p.use_ospf && p.n_ospf_instances >= 2 && routers.len() >= 4) {
                continue;
            }
            let ospf_routers: Vec<DeviceId> =
                routers.iter().copied().filter(|r| g.configs[r].ospf.is_some()).collect();
            let comps = g.network.topology.components(&ospf_routers);
            // Components computed over OSPF routers only, but connectivity
            // may route through non-OSPF devices; use the induced subgraph.
            let mut induced = Topology::new();
            for l in g.network.topology.links() {
                if ospf_routers.contains(&l.a) && ospf_routers.contains(&l.b) {
                    induced.add_link(*l);
                }
            }
            let comps_induced = induced.components(&ospf_routers);
            assert_eq!(comps_induced.len(), 2, "network {}", g.network.id);
            drop(comps);
            found += 1;
        }
        assert!(found > 0, "no two-instance OSPF networks generated");
    }

    #[test]
    fn heterogeneity_spreads_across_networks() {
        let gens = generate(120);
        let mut multi_model = 0;
        let mut multi_vendor = 0;
        for g in &gens {
            let models: std::collections::BTreeSet<_> =
                g.network.devices.iter().map(|d| d.model).collect();
            let vendors: std::collections::BTreeSet<_> =
                g.network.devices.iter().map(|d| d.vendor()).collect();
            if models.len() > 1 {
                multi_model += 1;
            }
            if vendors.len() > 1 {
                multi_vendor += 1;
            }
        }
        // Paper: >96% multi-model, >81% multi-vendor. Allow slack at this
        // sample size.
        assert!(multi_model as f64 / gens.len() as f64 > 0.85, "multi-model {multi_model}");
        assert!(multi_vendor as f64 / gens.len() as f64 > 0.6, "multi-vendor {multi_vendor}");
    }

    #[test]
    fn middlebox_presence_tracks_profile() {
        let cfg = org(60);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let profiles = sample_profiles(&cfg, &mut rng);
        let mut next_id = 0u32;
        for p in &profiles {
            let g = generate_network(p, &mut next_id, &mut rng);
            assert_eq!(g.network.has_middlebox(), p.wants_middlebox(), "network {}", p.id);
        }
    }

    #[test]
    fn partition_covers_all_items() {
        let items: Vec<u32> = (0..10).collect();
        let parts = partition(&items, 3);
        assert_eq!(parts.len(), 3);
        let flat: Vec<u32> = parts.concat();
        assert_eq!(flat, items);
        assert!(parts.iter().all(|p| !p.is_empty()));
        // k > len clamps.
        let parts = partition(&items[..2], 5);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn configs_render_and_parse_cleanly() {
        for g in generate(15) {
            for d in &g.network.devices {
                let text = mpa_config::render_config(&g.configs[&d.id]);
                let parsed = mpa_config::parse_config(&text, d.dialect())
                    .unwrap_or_else(|e| panic!("device {} failed to parse: {e}", d.hostname()));
                assert_eq!(parsed.hostname, d.hostname());
            }
        }
    }
}
