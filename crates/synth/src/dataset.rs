//! The generated dataset: everything an organization's data sources would
//! hold, plus the ground-truth table used only for validation.
//!
//! A [`Dataset`] is the boundary between synthesis and inference. The
//! inference pipeline (`mpa-metrics`) may read: `networks` (inventory view
//! via `inventory`), `archive`, `tickets`, `directory`, and `coverage`. It
//! must never read `ground_truth` — that field exists so tests and
//! EXPERIMENTS.md can check what the analytics *should* find.

use crate::degrade::DegradeStats;
use crate::ops::MonthTruth;
use mpa_config::{Archive, UserDirectory};
use mpa_model::{Inventory, Network, NetworkId, StudyPeriod, Ticket};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Ground truth re-export (per network-month record).
pub type GroundTruth = MonthTruth;

/// A complete synthetic-organization dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The study period.
    pub period: StudyPeriod,
    /// All networks (devices + topology).
    pub networks: Vec<Network>,
    /// The inventory database (flat view of the device fleet).
    pub inventory: Inventory,
    /// The configuration snapshot archive.
    pub archive: Archive,
    /// The trouble-ticket log (incidents and maintenance interleaved).
    pub tickets: Vec<Ticket>,
    /// The user directory classifying automation accounts.
    pub directory: UserDirectory,
    /// Network-months with intact logging; cases outside this set must be
    /// dropped by inference (they model the paper's missing snapshots).
    pub coverage: BTreeSet<(NetworkId, usize)>,
    /// Ground truth per network-month — for validation only.
    pub ground_truth: Vec<GroundTruth>,
    /// What the degradation pass touched (all zeros for pristine
    /// corpora); `kept + dropped == generated` by construction.
    pub degrade: DegradeStats,
}

/// Table 2-style size summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Months covered.
    pub months: usize,
    /// First and last month labels.
    pub span: (String, String),
    /// Number of networks.
    pub networks: usize,
    /// Number of distinct services hosted.
    pub services: usize,
    /// Total devices.
    pub devices: usize,
    /// Total configuration snapshots.
    pub config_snapshots: usize,
    /// Total bytes of archived configuration text.
    pub config_bytes: usize,
    /// Total tickets (incident + maintenance).
    pub tickets: usize,
    /// Network-months with intact logging (the case count upper bound).
    pub logged_network_months: usize,
}

impl Dataset {
    /// Compute the Table 2 summary.
    pub fn summary(&self) -> DatasetSummary {
        let services: BTreeSet<u32> = self
            .networks
            .iter()
            .flat_map(|n| n.workloads.iter().map(|w| w.service))
            .collect();
        DatasetSummary {
            months: self.period.n_months(),
            span: (
                self.period.month(0).to_string(),
                self.period.month(self.period.n_months() - 1).to_string(),
            ),
            networks: self.networks.len(),
            services: services.len(),
            devices: self.inventory.n_devices(),
            config_snapshots: self.archive.n_snapshots(),
            config_bytes: self.archive.total_bytes(),
            tickets: self.tickets.len(),
            logged_network_months: self.coverage.len(),
        }
    }

    /// Network lookup by id.
    pub fn network(&self, id: NetworkId) -> Option<&Network> {
        self.networks.iter().find(|n| n.id == id)
    }

    /// Whether a network-month has intact logging.
    pub fn is_logged(&self, net: NetworkId, month: usize) -> bool {
        self.coverage.contains(&(net, month))
    }

    /// Ground-truth record for a network-month (validation only).
    pub fn truth(&self, net: NetworkId, month: usize) -> Option<&GroundTruth> {
        self.ground_truth.iter().find(|t| t.network == net && t.month == month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn summary_counts_are_consistent() {
        let ds = Scenario::tiny().generate();
        let s = ds.summary();
        assert_eq!(s.networks, ds.networks.len());
        assert_eq!(s.devices, ds.networks.iter().map(|n| n.size()).sum::<usize>());
        assert_eq!(s.months, ds.period.n_months());
        assert!(s.config_snapshots >= s.devices, "at least the initial snapshot each");
        assert!(s.tickets > 0);
        assert!(s.logged_network_months <= s.networks * s.months);
        assert!(s.logged_network_months > s.networks * s.months / 2);
        assert!(s.services > 0);
        assert_eq!(s.span.0, "2013-08");
    }

    #[test]
    fn coverage_matches_truth_logged_flags() {
        let ds = Scenario::tiny().generate();
        for t in &ds.ground_truth {
            assert_eq!(ds.is_logged(t.network, t.month), t.logged, "{:?}/{}", t.network, t.month);
        }
    }

    #[test]
    fn lookup_helpers() {
        let ds = Scenario::tiny().generate();
        let first = ds.networks[0].id;
        assert!(ds.network(first).is_some());
        assert!(ds.network(NetworkId(9_999)).is_none());
        assert!(ds.truth(first, 0).is_some());
        assert!(ds.truth(first, 999).is_none());
    }
}
