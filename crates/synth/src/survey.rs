//! The operator survey (paper §3.1, Figure 2).
//!
//! 51 operators — 45 recruited via the NANOG list, 4 from a campus network,
//! 2 from the OSP — rated how much each of eleven practices matters to their
//! networks' health. Figure 2's headline findings: clear consensus in just
//! one case (number of change events, rated high-impact), a roughly even
//! low-vs-high split for several others (network size, models,
//! inter-device complexity), a majority-low rating for ACL-change fraction
//! (which the causal analysis later contradicts), and a majority-high rating
//! for middlebox-change fraction (which the MI ranking contradicts).
//!
//! The generator reproduces those response *counts* exactly and assigns them
//! to concrete respondents deterministically from a seed.

use mpa_stats::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The practices the survey asked about (Figure 2's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SurveyPractice {
    /// Number of devices.
    NumDevices,
    /// Number of hardware models.
    NumModels,
    /// Number of firmware versions.
    NumFirmwareVersions,
    /// Number of protocols.
    NumProtocols,
    /// Inter-device configuration complexity.
    InterDeviceComplexity,
    /// Number of change events.
    NumChangeEvents,
    /// Average devices changed per event.
    AvgDevicesPerEvent,
    /// Fraction of events with a middlebox change.
    FracMboxChange,
    /// Fraction of events automated.
    FracAutomated,
    /// Fraction of events with a router change.
    FracRouterChange,
    /// Fraction of events with an ACL change.
    FracAclChange,
}

impl SurveyPractice {
    /// All surveyed practices, in Figure 2's order.
    pub const ALL: [SurveyPractice; 11] = [
        SurveyPractice::NumDevices,
        SurveyPractice::NumModels,
        SurveyPractice::NumFirmwareVersions,
        SurveyPractice::NumProtocols,
        SurveyPractice::InterDeviceComplexity,
        SurveyPractice::NumChangeEvents,
        SurveyPractice::AvgDevicesPerEvent,
        SurveyPractice::FracMboxChange,
        SurveyPractice::FracAutomated,
        SurveyPractice::FracRouterChange,
        SurveyPractice::FracAclChange,
    ];

    /// Display label matching the figure.
    pub fn label(self) -> &'static str {
        match self {
            SurveyPractice::NumDevices => "No. of devices",
            SurveyPractice::NumModels => "No. of models",
            SurveyPractice::NumFirmwareVersions => "No. of firmware versions",
            SurveyPractice::NumProtocols => "No. of protocols",
            SurveyPractice::InterDeviceComplexity => "Inter-device complexity",
            SurveyPractice::NumChangeEvents => "No. of change events",
            SurveyPractice::AvgDevicesPerEvent => "Avg. devices changed/event",
            SurveyPractice::FracMboxChange => "Frac. events w/ mbox change",
            SurveyPractice::FracAutomated => "Frac. events automated",
            SurveyPractice::FracRouterChange => "Frac. events w/ router change",
            SurveyPractice::FracAclChange => "Frac. events w/ ACL change",
        }
    }

    /// Published response counts `[no, low, medium, high, not-sure]`
    /// (sums to 51; read off Figure 2).
    pub fn response_counts(self) -> [usize; 5] {
        match self {
            SurveyPractice::NumDevices => [2, 15, 14, 17, 3],
            SurveyPractice::NumModels => [3, 16, 14, 15, 3],
            SurveyPractice::NumFirmwareVersions => [2, 13, 17, 16, 3],
            SurveyPractice::NumProtocols => [2, 14, 18, 14, 3],
            SurveyPractice::InterDeviceComplexity => [1, 15, 13, 18, 4],
            SurveyPractice::NumChangeEvents => [1, 4, 12, 32, 2],
            SurveyPractice::AvgDevicesPerEvent => [2, 12, 18, 14, 5],
            SurveyPractice::FracMboxChange => [1, 8, 14, 25, 3],
            SurveyPractice::FracAutomated => [2, 10, 16, 20, 3],
            SurveyPractice::FracRouterChange => [1, 10, 16, 21, 3],
            SurveyPractice::FracAclChange => [4, 24, 12, 8, 3],
        }
    }
}

/// A respondent's opinion of one practice's impact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ImpactOpinion {
    /// No impact on health.
    NoImpact,
    /// Low impact.
    Low,
    /// Medium impact.
    Medium,
    /// High impact.
    High,
    /// Not sure.
    NotSure,
}

impl ImpactOpinion {
    /// All opinion levels, in Figure 2's legend order.
    pub const ALL: [ImpactOpinion; 5] = [
        ImpactOpinion::NoImpact,
        ImpactOpinion::Low,
        ImpactOpinion::Medium,
        ImpactOpinion::High,
        ImpactOpinion::NotSure,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ImpactOpinion::NoImpact => "No impact",
            ImpactOpinion::Low => "Low impact",
            ImpactOpinion::Medium => "Medium impact",
            ImpactOpinion::High => "High impact",
            ImpactOpinion::NotSure => "Not sure",
        }
    }
}

/// Where a respondent was recruited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RespondentSource {
    /// NANOG mailing list (45 respondents).
    Nanog,
    /// The authors' campus network (4).
    Campus,
    /// The studied OSP (2).
    Osp,
}

/// One operator's full questionnaire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyResponse {
    /// Respondent index (0..51).
    pub respondent: usize,
    /// Recruitment source.
    pub source: RespondentSource,
    /// One opinion per practice, in [`SurveyPractice::ALL`] order.
    pub opinions: Vec<ImpactOpinion>,
}

/// Number of survey respondents.
pub const N_RESPONDENTS: usize = 51;

/// Generate the 51 responses. Aggregate counts per practice match
/// [`SurveyPractice::response_counts`] exactly; the assignment of opinions
/// to individual respondents is shuffled deterministically from `seed`.
pub fn generate_survey(seed: u64) -> Vec<SurveyResponse> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut s = Sampler::new(&mut rng);

    let mut per_practice: Vec<Vec<ImpactOpinion>> = Vec::new();
    for p in SurveyPractice::ALL {
        let counts = p.response_counts();
        let mut column: Vec<ImpactOpinion> = Vec::with_capacity(N_RESPONDENTS);
        for (level, &count) in ImpactOpinion::ALL.iter().zip(&counts) {
            column.extend(std::iter::repeat_n(*level, count));
        }
        debug_assert_eq!(column.len(), N_RESPONDENTS);
        s.shuffle(&mut column);
        per_practice.push(column);
    }

    (0..N_RESPONDENTS)
        .map(|r| SurveyResponse {
            respondent: r,
            source: match r {
                0..=44 => RespondentSource::Nanog,
                45..=48 => RespondentSource::Campus,
                _ => RespondentSource::Osp,
            },
            opinions: per_practice.iter().map(|col| col[r]).collect(),
        })
        .collect()
}

/// Aggregate a survey back into Figure 2's per-practice counts.
pub fn tally(responses: &[SurveyResponse]) -> Vec<(SurveyPractice, [usize; 5])> {
    SurveyPractice::ALL
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            let mut counts = [0usize; 5];
            for r in responses {
                let level = r.opinions[pi];
                let li = ImpactOpinion::ALL.iter().position(|&l| l == level).expect("level");
                counts[li] += 1;
            }
            (p, counts)
        })
        .collect()
}

/// The majority (modal) opinion for a practice, ignoring "not sure".
pub fn majority_opinion(responses: &[SurveyResponse], practice: SurveyPractice) -> ImpactOpinion {
    let pi = SurveyPractice::ALL.iter().position(|&p| p == practice).expect("known practice");
    let mut counts = [0usize; 4];
    for r in responses {
        match r.opinions[pi] {
            ImpactOpinion::NoImpact => counts[0] += 1,
            ImpactOpinion::Low => counts[1] += 1,
            ImpactOpinion::Medium => counts[2] += 1,
            ImpactOpinion::High => counts[3] += 1,
            ImpactOpinion::NotSure => {}
        }
    }
    let best = counts.iter().enumerate().max_by_key(|(_, &c)| c).expect("non-empty").0;
    ImpactOpinion::ALL[best]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_51_for_every_practice() {
        for p in SurveyPractice::ALL {
            let total: usize = p.response_counts().iter().sum();
            assert_eq!(total, N_RESPONDENTS, "{p:?}");
        }
    }

    #[test]
    fn generated_survey_matches_published_counts_exactly() {
        let responses = generate_survey(42);
        assert_eq!(responses.len(), N_RESPONDENTS);
        for (p, counts) in tally(&responses) {
            assert_eq!(counts, p.response_counts(), "{p:?}");
        }
    }

    #[test]
    fn respondent_sources_match_recruitment() {
        let responses = generate_survey(42);
        let nanog = responses.iter().filter(|r| r.source == RespondentSource::Nanog).count();
        let campus = responses.iter().filter(|r| r.source == RespondentSource::Campus).count();
        let osp = responses.iter().filter(|r| r.source == RespondentSource::Osp).count();
        assert_eq!((nanog, campus, osp), (45, 4, 2));
    }

    #[test]
    fn consensus_only_for_change_events() {
        // "We see clear consensus in just one case — number of change
        // events": >60% of respondents rate it high.
        let responses = generate_survey(42);
        for p in SurveyPractice::ALL {
            let counts = p.response_counts();
            let high_frac = counts[3] as f64 / N_RESPONDENTS as f64;
            if p == SurveyPractice::NumChangeEvents {
                assert!(high_frac > 0.6, "{p:?} {high_frac}");
            } else {
                assert!(high_frac < 0.55, "{p:?} {high_frac}");
            }
        }
        assert_eq!(
            majority_opinion(&responses, SurveyPractice::NumChangeEvents),
            ImpactOpinion::High
        );
    }

    #[test]
    fn acl_majority_is_low_and_mbox_majority_is_high() {
        // The two opinions the paper's analysis contradicts.
        let responses = generate_survey(42);
        assert_eq!(majority_opinion(&responses, SurveyPractice::FracAclChange), ImpactOpinion::Low);
        assert_eq!(majority_opinion(&responses, SurveyPractice::FracMboxChange), ImpactOpinion::High);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate_survey(1), generate_survey(1));
        assert_ne!(generate_survey(1), generate_survey(2));
    }
}
