//! Latent per-network practice profiles.
//!
//! A [`NetworkProfile`] is the *intent* side of the management plane: how
//! big the network is, how heterogeneous its hardware, how active and how
//! automated its operations. Profiles are sampled so that the population
//! matches the paper's Appendix A characterization (targets quoted inline
//! below); the inference pipeline never sees a profile — it must recover
//! the practices from inventory, snapshots and tickets.

use mpa_stats::Sampler;
use mpa_model::NetworkId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Organization-level generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgConfig {
    /// Master seed; every derived RNG is a deterministic function of it.
    pub seed: u64,
    /// Number of networks to generate (the paper's OSP has 850+).
    pub n_networks: usize,
    /// Study length in months (the paper covers 17).
    pub n_months: usize,
    /// Number of distinct services workloads are drawn from (paper: O(100)).
    pub n_services: usize,
    /// Probability that a network-month's logging is incomplete and the
    /// case must be dropped (yields ≈11K cases from 850×17 in the paper).
    pub missing_month_rate: f64,
    /// σ of the per-network log-normal health noise multiplier. Governs how
    /// predictable health is from practices (calibrated so decision-tree
    /// accuracy lands near the paper's 91%/81%).
    pub noise_sigma: f64,
}

/// Semantic operation families the simulator can perform. The per-network
/// mix over these drives the operational-practice metrics (change types,
/// fraction of events with an interface/ACL/router change, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Tweak an interface (description revision, MTU).
    IfaceTweak,
    /// Move a port between VLANs / add a port to a VLAN.
    VlanMembership,
    /// Create or delete a VLAN.
    VlanLifecycle,
    /// Add or remove an ACL rule.
    AclEdit,
    /// Add or remove a load-balancer pool member.
    PoolResize,
    /// Add or remove a local user account.
    UserChurn,
    /// Add or remove a BGP peering.
    BgpPeering,
    /// Advertise an additional OSPF network.
    OspfAdvertise,
    /// Adjust the sFlow sampling rate.
    SflowTune,
    /// Adjust a QoS class marking.
    QosTune,
}

impl OpKind {
    /// All operation kinds, fixed order.
    pub const ALL: [OpKind; 10] = [
        OpKind::IfaceTweak,
        OpKind::VlanMembership,
        OpKind::VlanLifecycle,
        OpKind::AclEdit,
        OpKind::PoolResize,
        OpKind::UserChurn,
        OpKind::BgpPeering,
        OpKind::OspfAdvertise,
        OpKind::SflowTune,
        OpKind::QosTune,
    ];

    /// Relative propensity for this operation to be executed by automation
    /// rather than a human. The paper observes pool changes are the most
    /// automated, followed by ACL and interface changes, and that
    /// sflow/QoS changes are the most automated *types* (Appendix A.2).
    pub fn automation_bias(self) -> f64 {
        match self {
            OpKind::PoolResize => 1.6,
            OpKind::SflowTune | OpKind::QosTune => 1.9,
            OpKind::AclEdit => 1.2,
            OpKind::IfaceTweak => 1.0,
            OpKind::VlanMembership | OpKind::VlanLifecycle => 0.8,
            OpKind::UserChurn => 0.6,
            OpKind::BgpPeering | OpKind::OspfAdvertise => 0.5,
        }
    }
}

/// The latent profile of one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Network id.
    pub id: NetworkId,
    /// Whether the network only interconnects others (≈5% of networks; the
    /// paper: "a handful of networks do not host any workloads").
    pub interconnect: bool,
    /// Hosted service ids (empty for interconnect networks; 81% host one).
    pub services: Vec<u32>,
    /// Total device count.
    pub n_devices: usize,
    /// Heterogeneity appetite in `[0, 1]`: 0 → single model per role,
    /// 1 → models drawn freely across vendors and generations.
    pub heterogeneity: f64,
    /// Firmware discipline in `[0, 1]`: 1 → a single firmware version per
    /// model; lower values spread devices across trains.
    pub firmware_discipline: f64,
    /// Network-wide VLAN count (heavy-tailed; paper: <5 VLANs in 5% of
    /// networks, >100 in 9%).
    pub n_vlans: usize,
    /// Layer-2 feature toggles (beyond VLANs).
    pub use_stp: bool,
    /// Link aggregation enabled.
    pub use_lacp: bool,
    /// UDLD enabled.
    pub use_udld: bool,
    /// DHCP relay enabled.
    pub use_dhcp_relay: bool,
    /// Whether BGP runs (paper: 86% of networks).
    pub use_bgp: bool,
    /// Number of BGP instances (39% of BGP networks have one; 8% > 20).
    pub n_bgp_instances: usize,
    /// Whether OSPF runs (paper: 31% of networks).
    pub use_ospf: bool,
    /// Number of OSPF instances (1–2).
    pub n_ospf_instances: usize,
    /// Mean change events per month (10th pctile network ≈ 3, 90th ≈ 34).
    pub activity: f64,
    /// Fraction of changes performed by automation accounts (10%–70%).
    pub automation: f64,
    /// Mix over operation kinds (non-negative weights; zero = op unused).
    pub op_weights: Vec<(OpKind, f64)>,
    /// Mean devices touched per change event, ≥ 1 (most events touch 1–2).
    pub event_size_mean: f64,
    /// Mean planned-maintenance tickets per month (excluded from health).
    pub maintenance_rate: f64,
    /// Per-network latent health-noise multiplier (log-normal, mean ≈ 1);
    /// represents everything the 28 metrics do not capture.
    pub noise: f64,
}

impl NetworkProfile {
    /// Weight of one op kind (0.0 if unused).
    pub fn op_weight(&self, kind: OpKind) -> f64 {
        self.op_weights.iter().find(|(k, _)| *k == kind).map_or(0.0, |(_, w)| *w)
    }

    /// Whether the network contains middleboxes (derived: pool ops only make
    /// sense with load balancers; netgen adds LB/ADC devices iff this holds).
    pub fn wants_middlebox(&self) -> bool {
        self.op_weight(OpKind::PoolResize) > 0.0
    }
}

/// Sample all network profiles for an organization.
pub fn sample_profiles<R: Rng>(cfg: &OrgConfig, rng: &mut R) -> Vec<NetworkProfile> {
    (0..cfg.n_networks).map(|ix| sample_profile(cfg, NetworkId::from_index(ix), rng)).collect()
}

fn sample_profile<R: Rng>(cfg: &OrgConfig, id: NetworkId, rng: &mut R) -> NetworkProfile {
    let mut s = Sampler::new(rng);

    let interconnect = s.bernoulli(0.04);
    let services = if interconnect {
        Vec::new()
    } else if s.bernoulli(0.81) {
        // Paper: 81% of networks host exactly one workload.
        vec![s.uniform_range(0, cfg.n_services as u64 - 1) as u32]
    } else {
        let k = s.uniform_range(2, 3) as usize;
        (0..k).map(|_| s.uniform_range(0, cfg.n_services as u64 - 1) as u32).collect()
    };

    // Size: a mixture of many small service pods and fewer large
    // aggregation fabrics — Fig 12(a) shows networks past 300 devices.
    // The bimodality matters downstream: size is the strongest health
    // driver, and the gap between the modes is what separates
    // clearly-healthy from clearly-unhealthy networks (without it, most
    // cases sit in the Poisson-ambiguous zone and no model could reach the
    // paper's 91.6% two-class accuracy).
    let n_devices = if s.bernoulli(0.62) {
        (2.0 + s.log_normal(1.5, 0.6)).round().clamp(2.0, 600.0) as usize
    } else {
        (2.0 + s.log_normal(3.7, 0.7)).round().clamp(2.0, 600.0) as usize
    };

    let heterogeneity = s.uniform().powf(1.3); // skew toward homogeneous
    let firmware_discipline = 1.0 - s.uniform().powf(2.5);

    // VLANs: heavy tail (none on pure interconnects).
    let n_vlans = if interconnect {
        0
    } else {
        s.log_normal(2.8, 1.3).round().clamp(1.0, 400.0) as usize
    };

    // L2/L3 protocol usage: calibrated so the per-network protocol count
    // spreads roughly uniformly over 1..8 (Fig 11(b)) and routing matches
    // Appendix A (BGP 86%, OSPF 31%).
    let use_stp = !interconnect && s.bernoulli(0.6);
    let use_lacp = s.bernoulli(0.5);
    let use_udld = s.bernoulli(0.4);
    let use_dhcp_relay = !interconnect && s.bernoulli(0.35);
    let use_bgp = if interconnect { true } else { s.bernoulli(0.85) };
    let use_ospf = s.bernoulli(0.31);

    let n_bgp_instances = if !use_bgp {
        0
    } else if s.bernoulli(0.39) {
        1
    } else {
        // Heavy tail: ~8% of BGP networks exceed 20 instances.
        (1.0 + s.log_normal(1.0, 1.1)).round().clamp(2.0, 60.0) as usize
    };
    let n_ospf_instances = if use_ospf { s.uniform_range(1, 2) as usize } else { 0 };

    // Activity: log-normal with median ≈ 9 events/month; correlated with
    // size (Pearson ≈ 0.6 for changes-vs-size, Fig 12(a)).
    let size_z = ((n_devices as f64).ln() - 2.4) / 1.1;
    let activity = (0.6 * size_z * 1.0 + s.normal(2.2, 0.95)).exp().clamp(0.3, 400.0);

    // Automation: wide spread, weakly related to anything else.
    let automation = s.normal(0.42, 0.2).clamp(0.05, 0.9);

    // Operation mix. Diversity (how many op kinds are active) grows with
    // activity: busy networks touch more kinds of configuration. This is
    // what makes "fraction of events with an interface change" confounded
    // with (but, in the ground truth, not a cause of) health: quiet networks
    // sit at extreme interface fractions, busy diverse networks in the
    // middle (Fig 4(c)'s non-monotonic shape).
    let wants_middlebox = !interconnect && s.bernoulli(0.71);
    let mut candidates: Vec<(OpKind, f64)> = vec![
        (OpKind::IfaceTweak, 0.40),
        (OpKind::VlanMembership, 0.15),
        (OpKind::VlanLifecycle, 0.05),
        (OpKind::AclEdit, 0.14),
        (OpKind::UserChurn, 0.08),
        (OpKind::BgpPeering, if use_bgp { 0.06 } else { 0.0 }),
        (OpKind::OspfAdvertise, if use_ospf { 0.02 } else { 0.0 }),
        (OpKind::PoolResize, if wants_middlebox { 0.22 } else { 0.0 }),
        (OpKind::SflowTune, 0.03),
        (OpKind::QosTune, 0.03),
    ];
    if interconnect {
        // Interconnects do not shuffle VLAN ports.
        for (k, w) in &mut candidates {
            if matches!(k, OpKind::VlanMembership | OpKind::VlanLifecycle) {
                *w = 0.0;
            }
        }
    }
    // ~5% of networks are router-change-heavy (Fig 12(c): >0.5 of changes
    // are router changes in about 5% of networks).
    if use_bgp && s.bernoulli(0.05) {
        for (k, w) in &mut candidates {
            if *k == OpKind::BgpPeering {
                *w = 1.2;
            }
        }
    }
    // Activity-linked diversity: low-activity networks keep only a few ops.
    let act_pct = ((activity.ln() - 2.2) / 0.9).clamp(-2.0, 2.0); // ≈ z-score
    let keep = (3.0 + 2.2 * (act_pct + 2.0)).round() as usize; // 3..=12 kinds
    let mut active: Vec<(OpKind, f64)> =
        candidates.iter().copied().filter(|(_, w)| *w > 0.0).collect();
    // Randomize which kinds are dropped, biased to keep high-weight kinds.
    while active.len() > keep.max(2) {
        let weights: Vec<f64> = active.iter().map(|(_, w)| 1.0 / (w + 0.05)).collect();
        let drop_ix = s.weighted_choice(&weights);
        active.remove(drop_ix);
    }
    // Per-network jitter on weights.
    let op_weights: Vec<(OpKind, f64)> = active
        .into_iter()
        .map(|(k, w)| (k, w * s.log_normal(0.0, 0.45)))
        .collect();

    // Event size: half of the networks average ≤2 devices per event
    // (Fig 13(a)); a tail averages up to ~9. The wide σ keeps per-device
    // change counts from being a near-deterministic function of event
    // counts, which matters for the causal analysis' positivity.
    let event_size_mean = 1.0 + s.log_normal(-0.2, 1.0).clamp(0.0, 8.0);

    let maintenance_rate = 0.15 + 0.012 * activity.min(60.0);

    let noise = s.log_normal(0.0, cfg.noise_sigma);

    NetworkProfile {
        id,
        interconnect,
        services,
        n_devices,
        heterogeneity,
        firmware_discipline,
        n_vlans,
        use_stp,
        use_lacp,
        use_udld,
        use_dhcp_relay,
        use_bgp,
        n_bgp_instances,
        use_ospf,
        n_ospf_instances,
        activity,
        automation,
        op_weights,
        event_size_mean,
        maintenance_rate,
        noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn org() -> OrgConfig {
        OrgConfig {
            seed: 7,
            n_networks: 600,
            n_months: 17,
            n_services: 120,
            missing_month_rate: 0.2,
            noise_sigma: 0.45,
        }
    }

    fn profiles() -> Vec<NetworkProfile> {
        let cfg = org();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        sample_profiles(&cfg, &mut rng)
    }

    #[test]
    fn population_matches_appendix_a_targets() {
        let ps = profiles();
        let n = ps.len() as f64;

        let frac = |pred: &dyn Fn(&NetworkProfile) -> bool| {
            ps.iter().filter(|p| pred(p)).count() as f64 / n
        };

        // ~5% interconnect; hosting networks mostly single-workload.
        let interconnect = frac(&|p| p.interconnect);
        assert!((0.02..0.09).contains(&interconnect), "interconnect {interconnect}");
        let single = ps.iter().filter(|p| p.services.len() == 1).count() as f64
            / ps.iter().filter(|p| !p.interconnect).count() as f64;
        assert!((0.75..0.88).contains(&single), "single-workload {single}");

        // BGP ≈ 86%, OSPF ≈ 31%.
        let bgp = frac(&|p| p.use_bgp);
        assert!((0.80..0.92).contains(&bgp), "bgp {bgp}");
        let ospf = frac(&|p| p.use_ospf);
        assert!((0.25..0.37).contains(&ospf), "ospf {ospf}");

        // BGP instance counts: sizable single-instance share, heavy tail.
        let bgp_nets: Vec<_> = ps.iter().filter(|p| p.use_bgp).collect();
        let one = bgp_nets.iter().filter(|p| p.n_bgp_instances == 1).count() as f64
            / bgp_nets.len() as f64;
        assert!((0.30..0.50).contains(&one), "single-instance {one}");
        let over20 = bgp_nets.iter().filter(|p| p.n_bgp_instances > 20).count() as f64
            / bgp_nets.len() as f64;
        assert!((0.01..0.15).contains(&over20), "over-20 {over20}");
    }

    #[test]
    fn size_distribution_is_heavy_tailed() {
        let ps = profiles();
        let mut sizes: Vec<f64> = ps.iter().map(|p| p.n_devices as f64).collect();
        sizes.sort_by(|a, b| a.total_cmp(b));
        let median = sizes[sizes.len() / 2];
        assert!((6.0..20.0).contains(&median), "median size {median}");
        assert!(*sizes.last().unwrap() > 100.0, "tail exists");
        // Total device count lands at the paper's O(10K) for 850 networks
        // (scaled here: 600 networks → proportionally smaller).
        let total: f64 = sizes.iter().sum();
        assert!(total > 4_000.0 && total < 30_000.0, "total {total}");
    }

    #[test]
    fn activity_percentiles_match_fig12e() {
        let ps = profiles();
        let mut acts: Vec<f64> = ps.iter().map(|p| p.activity).collect();
        acts.sort_by(|a, b| a.total_cmp(b));
        let p10 = acts[acts.len() / 10];
        let p90 = acts[acts.len() * 9 / 10];
        // Paper: 10th percentile ≈ 3 events, 90th ≈ 34.
        assert!((1.0..7.0).contains(&p10), "p10 {p10}");
        assert!((20.0..70.0).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn automation_is_diverse() {
        let ps = profiles();
        let lo = ps.iter().filter(|p| p.automation < 0.25).count();
        let hi = ps.iter().filter(|p| p.automation > 0.5).count();
        assert!(lo > 0 && hi > 0, "automation spread missing: lo={lo} hi={hi}");
    }

    #[test]
    fn op_mix_diversity_tracks_activity() {
        let ps = profiles();
        let quiet_avg: f64 = {
            let quiet: Vec<_> = ps.iter().filter(|p| p.activity < 4.0).collect();
            quiet.iter().map(|p| p.op_weights.len() as f64).sum::<f64>() / quiet.len() as f64
        };
        let busy_avg: f64 = {
            let busy: Vec<_> = ps.iter().filter(|p| p.activity > 30.0).collect();
            busy.iter().map(|p| p.op_weights.len() as f64).sum::<f64>() / busy.len() as f64
        };
        assert!(
            busy_avg > quiet_avg + 1.0,
            "busy networks should use more op kinds: quiet {quiet_avg}, busy {busy_avg}"
        );
    }

    #[test]
    fn middlebox_flag_consistency() {
        for p in profiles() {
            assert_eq!(p.wants_middlebox(), p.op_weight(OpKind::PoolResize) > 0.0);
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let cfg = org();
        let mut r1 = StdRng::seed_from_u64(cfg.seed);
        let mut r2 = StdRng::seed_from_u64(cfg.seed);
        assert_eq!(sample_profiles(&cfg, &mut r1), sample_profiles(&cfg, &mut r2));
    }
}
