//! Strongly-typed identifiers.
//!
//! Identifiers are plain `u32` newtypes: cheap to copy, hash and sort, and
//! impossible to mix up across entity kinds at compile time. They are dense
//! (assigned sequentially by generators and loaders), so they double as
//! indices into side tables.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub const fn from_index(ix: usize) -> Self {
                Self(ix as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a network (a managed collection of devices hosting one
    /// or more workloads, or interconnecting other networks).
    NetworkId,
    "net-"
);

id_type!(
    /// Identifier of a device, unique across the whole organization (not
    /// merely within its network).
    DeviceId,
    "dev-"
);

id_type!(
    /// Identifier of a trouble ticket.
    TicketId,
    "tkt-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NetworkId(7).to_string(), "net-7");
        assert_eq!(DeviceId(0).to_string(), "dev-0");
        assert_eq!(TicketId(123).to_string(), "tkt-123");
    }

    #[test]
    fn index_round_trip() {
        let id = DeviceId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, DeviceId(42));
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(NetworkId(1) < NetworkId(2));
        let mut v = vec![TicketId(3), TicketId(1), TicketId(2)];
        v.sort();
        assert_eq!(v, vec![TicketId(1), TicketId(2), TicketId(3)]);
    }

    #[test]
    fn serde_is_transparent() {
        let s = serde_json::to_string(&NetworkId(9)).unwrap();
        assert_eq!(s, "9");
        let back: NetworkId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, NetworkId(9));
    }
}
