//! Trouble tickets.
//!
//! Tickets are MPA's health signal (paper §2.2, "Network Health"): incident
//! tickets — raised by monitoring alarms or user reports — count toward a
//! network's monthly ticket count, while *planned maintenance* tickets must
//! be excluded ("maintenance tickets are unlikely to be triggered by
//! performance or availability problems").

use crate::ids::{DeviceId, NetworkId, TicketId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// How a ticket came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TicketKind {
    /// A monitoring system crossed an alarm threshold.
    MonitoringAlarm,
    /// A user reported a problem.
    UserReport,
    /// Planned maintenance — excluded from health computation.
    PlannedMaintenance,
}

impl TicketKind {
    /// Whether this ticket counts toward the network-health metric.
    pub fn counts_toward_health(self) -> bool {
        !matches!(self, TicketKind::PlannedMaintenance)
    }
}

/// Operator-assigned impact level. The paper notes these are "often
/// subjective" and therefore not used as a health metric; we carry them so
/// the inference layer can demonstrate *ignoring* them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TicketSeverity {
    /// Informational / cosmetic.
    Low,
    /// Degradation with workaround.
    Medium,
    /// Outage or severe degradation.
    High,
}

/// A trouble ticket in the incident-management system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ticket {
    /// Identifier.
    pub id: TicketId,
    /// Network the ticket is filed against.
    pub network: NetworkId,
    /// How the ticket was created.
    pub kind: TicketKind,
    /// When the problem was discovered.
    pub opened: Timestamp,
    /// When the ticket was marked resolved. May lag the actual fix
    /// ("tickets are sometimes not marked as resolved until well after the
    /// problem has been fixed"), so duration is unreliable as a health metric.
    pub resolved: Option<Timestamp>,
    /// Devices named as causing or affected by the problem (may be empty:
    /// not every ticket localizes to a device).
    pub devices: Vec<DeviceId>,
    /// Operator-assigned severity.
    pub severity: TicketSeverity,
    /// Symptom selected from the incident system's predefined list.
    pub symptom: String,
}

impl Ticket {
    /// Resolution duration in minutes, if the ticket has been resolved.
    /// Returns `None` for open tickets and clamps negative spans (data-entry
    /// noise) to zero.
    pub fn duration_minutes(&self) -> Option<u64> {
        self.resolved.map(|r| r.0.saturating_sub(self.opened.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(kind: TicketKind) -> Ticket {
        Ticket {
            id: TicketId(1),
            network: NetworkId(0),
            kind,
            opened: Timestamp(100),
            resolved: Some(Timestamp(160)),
            devices: vec![],
            severity: TicketSeverity::Medium,
            symptom: "packet-loss".into(),
        }
    }

    #[test]
    fn maintenance_excluded_from_health() {
        assert!(ticket(TicketKind::MonitoringAlarm).kind.counts_toward_health());
        assert!(ticket(TicketKind::UserReport).kind.counts_toward_health());
        assert!(!ticket(TicketKind::PlannedMaintenance).kind.counts_toward_health());
    }

    #[test]
    fn duration_computed_and_clamped() {
        let mut t = ticket(TicketKind::UserReport);
        assert_eq!(t.duration_minutes(), Some(60));
        t.resolved = None;
        assert_eq!(t.duration_minutes(), None);
        t.resolved = Some(Timestamp(50)); // noisy record: resolved before opened
        assert_eq!(t.duration_minutes(), Some(0));
    }

    #[test]
    fn severity_is_ordered() {
        assert!(TicketSeverity::Low < TicketSeverity::Medium);
        assert!(TicketSeverity::Medium < TicketSeverity::High);
    }
}
