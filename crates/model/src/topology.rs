//! Physical topology: unordered links between devices.
//!
//! The topology feeds two inference tasks downstream: routing-instance
//! extraction (processes on *adjacent* devices merge into one instance,
//! paper §2.2 / Table 1 line D5) and inter-device configuration references
//! (a link implies matching interface/neighbor statements on both ends).

use crate::ids::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An unordered pair of connected devices. Stored canonically with
/// `a <= b`, so `Link::new(x, y) == Link::new(y, x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Lower endpoint id.
    pub a: DeviceId,
    /// Higher endpoint id.
    pub b: DeviceId,
}

impl Link {
    /// Canonicalizing constructor. Panics on self-links: a device cannot be
    /// cabled to itself in this model.
    pub fn new(x: DeviceId, y: DeviceId) -> Self {
        assert_ne!(x, y, "self-links are not representable");
        if x <= y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }

    /// The endpoint opposite `d`, or `None` if `d` is not an endpoint.
    pub fn other(&self, d: DeviceId) -> Option<DeviceId> {
        if d == self.a {
            Some(self.b)
        } else if d == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A set of links with adjacency queries. Deterministically ordered
/// (BTree-based) so iteration order never depends on hash seeds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    links: BTreeSet<Link>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a link; returns `false` if it was already present.
    pub fn add_link(&mut self, link: Link) -> bool {
        self.links.insert(link)
    }

    /// Whether `x` and `y` are directly connected.
    pub fn connected(&self, x: DeviceId, y: DeviceId) -> bool {
        if x == y {
            return false;
        }
        self.links.contains(&Link::new(x, y))
    }

    /// All links, in canonical order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Neighbors of `d`, in ascending id order.
    pub fn neighbors(&self, d: DeviceId) -> Vec<DeviceId> {
        self.links.iter().filter_map(|l| l.other(d)).collect()
    }

    /// Degree of every device that appears in at least one link.
    pub fn degrees(&self) -> BTreeMap<DeviceId, usize> {
        let mut deg = BTreeMap::new();
        for l in &self.links {
            *deg.entry(l.a).or_insert(0) += 1;
            *deg.entry(l.b).or_insert(0) += 1;
        }
        deg
    }

    /// Connected components over `universe` (devices with no links are
    /// singleton components). Components are returned sorted by their
    /// smallest member, members ascending.
    pub fn components(&self, universe: &[DeviceId]) -> Vec<Vec<DeviceId>> {
        // Union-find over the universe.
        let ids: Vec<DeviceId> = universe.to_vec();
        let index: BTreeMap<DeviceId, usize> =
            ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut parent: Vec<usize> = (0..ids.len()).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for l in &self.links {
            if let (Some(&ia), Some(&ib)) = (index.get(&l.a), index.get(&l.b)) {
                let ra = find(&mut parent, ia);
                let rb = find(&mut parent, ib);
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }

        let mut groups: BTreeMap<usize, Vec<DeviceId>> = BTreeMap::new();
        for (i, &d) in ids.iter().enumerate() {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(d);
        }
        let mut comps: Vec<Vec<DeviceId>> = groups.into_values().collect();
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort_by_key(|c| c[0]);
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DeviceId {
        DeviceId(i)
    }

    #[test]
    fn links_are_canonical() {
        assert_eq!(Link::new(d(2), d(1)), Link::new(d(1), d(2)));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let _ = Link::new(d(1), d(1));
    }

    #[test]
    fn other_endpoint() {
        let l = Link::new(d(1), d(2));
        assert_eq!(l.other(d(1)), Some(d(2)));
        assert_eq!(l.other(d(2)), Some(d(1)));
        assert_eq!(l.other(d(3)), None);
    }

    #[test]
    fn duplicate_links_collapse() {
        let mut t = Topology::new();
        assert!(t.add_link(Link::new(d(1), d(2))));
        assert!(!t.add_link(Link::new(d(2), d(1))));
        assert_eq!(t.n_links(), 1);
    }

    #[test]
    fn connectivity_and_neighbors() {
        let mut t = Topology::new();
        t.add_link(Link::new(d(1), d(2)));
        t.add_link(Link::new(d(1), d(3)));
        assert!(t.connected(d(1), d(2)));
        assert!(!t.connected(d(2), d(3)));
        assert!(!t.connected(d(1), d(1)));
        assert_eq!(t.neighbors(d(1)), vec![d(2), d(3)]);
        assert_eq!(t.neighbors(d(4)), Vec::<DeviceId>::new());
    }

    #[test]
    fn degrees() {
        let mut t = Topology::new();
        t.add_link(Link::new(d(1), d(2)));
        t.add_link(Link::new(d(1), d(3)));
        let deg = t.degrees();
        assert_eq!(deg[&d(1)], 2);
        assert_eq!(deg[&d(2)], 1);
        assert!(!deg.contains_key(&d(4)));
    }

    #[test]
    fn components_with_isolated_devices() {
        let mut t = Topology::new();
        t.add_link(Link::new(d(1), d(2)));
        t.add_link(Link::new(d(2), d(3)));
        t.add_link(Link::new(d(5), d(6)));
        let comps = t.components(&[d(1), d(2), d(3), d(4), d(5), d(6)]);
        assert_eq!(comps, vec![vec![d(1), d(2), d(3)], vec![d(4)], vec![d(5), d(6)]]);
    }

    #[test]
    fn components_ignore_links_outside_universe() {
        let mut t = Topology::new();
        t.add_link(Link::new(d(1), d(9)));
        let comps = t.components(&[d(1), d(2)]);
        assert_eq!(comps, vec![vec![d(1)], vec![d(2)]]);
    }
}
