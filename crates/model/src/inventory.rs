//! Inventory records.
//!
//! Data source 1 of the paper (§2.1): "Most organizations directly track the
//! set of networks they manage ... the vendor, model, location, and role of
//! every device in their deployment, and the network it belongs to."
//!
//! [`Inventory`] is the flat, queryable view of that database: one record per
//! device, indexed by network. The metric-inference layer consumes *this*
//! view (not [`crate::Network`] directly), mirroring how the paper's pipeline
//! reads an inventory dump rather than a live topology.

use crate::device::{Device, DeviceModel, Firmware, Role};
use crate::ids::{DeviceId, NetworkId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One inventory row: the durable attributes of a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InventoryRecord {
    /// Device id.
    pub device: DeviceId,
    /// Owning network.
    pub network: NetworkId,
    /// Hardware model (includes the vendor).
    pub model: DeviceModel,
    /// Role.
    pub role: Role,
    /// Firmware version recorded at inventory time.
    pub firmware: Firmware,
    /// Physical location tag (site / row / rack), free-form.
    pub location: String,
}

impl InventoryRecord {
    /// Build a record from a device and a location tag.
    pub fn from_device(d: &Device, location: impl Into<String>) -> Self {
        Self {
            device: d.id,
            network: d.network,
            model: d.model,
            role: d.role,
            firmware: d.firmware,
            location: location.into(),
        }
    }
}

/// The organization-wide inventory database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inventory {
    records: Vec<InventoryRecord>,
    #[serde(skip)]
    by_network: BTreeMap<NetworkId, Vec<usize>>,
}

impl Inventory {
    /// Build an inventory from records (any order).
    pub fn new(records: Vec<InventoryRecord>) -> Self {
        let mut inv = Self { records, by_network: BTreeMap::new() };
        inv.rebuild_index();
        inv
    }

    /// Rebuild the per-network index. Called automatically by [`Inventory::new`];
    /// call it after deserializing, since the index is not serialized.
    pub fn rebuild_index(&mut self) {
        self.by_network.clear();
        for (i, r) in self.records.iter().enumerate() {
            self.by_network.entry(r.network).or_default().push(i);
        }
    }

    /// All records.
    pub fn records(&self) -> &[InventoryRecord] {
        &self.records
    }

    /// Total number of devices in the organization.
    pub fn n_devices(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct networks that own at least one device.
    pub fn n_networks(&self) -> usize {
        self.by_network.len()
    }

    /// Records for one network (empty slice if unknown).
    pub fn network_records(&self, net: NetworkId) -> Vec<&InventoryRecord> {
        self.by_network
            .get(&net)
            .map(|ixs| ixs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Network ids present in the inventory, ascending.
    pub fn network_ids(&self) -> Vec<NetworkId> {
        self.by_network.keys().copied().collect()
    }

    /// Look up a single device record.
    pub fn device_record(&self, dev: DeviceId) -> Option<&InventoryRecord> {
        // Records are appended network-by-network, not sorted by device id,
        // so this is a linear scan; it is only used in diagnostics.
        self.records.iter().find(|r| r.device == dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Vendor;

    fn rec(dev: u32, net: u32, role: Role) -> InventoryRecord {
        InventoryRecord {
            device: DeviceId(dev),
            network: NetworkId(net),
            model: DeviceModel { vendor: Vendor::Cirrus, line: 1 },
            role,
            firmware: Firmware { major: 1, minor: 0, patch: 0 },
            location: "dc1/r1".into(),
        }
    }

    #[test]
    fn indexing_by_network() {
        let inv = Inventory::new(vec![
            rec(0, 0, Role::Router),
            rec(1, 1, Role::Switch),
            rec(2, 0, Role::Switch),
        ]);
        assert_eq!(inv.n_devices(), 3);
        assert_eq!(inv.n_networks(), 2);
        assert_eq!(inv.network_records(NetworkId(0)).len(), 2);
        assert_eq!(inv.network_records(NetworkId(1)).len(), 1);
        assert!(inv.network_records(NetworkId(9)).is_empty());
        assert_eq!(inv.network_ids(), vec![NetworkId(0), NetworkId(1)]);
    }

    #[test]
    fn device_lookup() {
        let inv = Inventory::new(vec![rec(0, 0, Role::Router), rec(5, 1, Role::Adc)]);
        assert_eq!(inv.device_record(DeviceId(5)).unwrap().role, Role::Adc);
        assert!(inv.device_record(DeviceId(9)).is_none());
    }

    #[test]
    fn index_survives_serde_round_trip() {
        let inv = Inventory::new(vec![rec(0, 3, Role::Router)]);
        let json = serde_json::to_string(&inv).unwrap();
        let mut back: Inventory = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.network_records(NetworkId(3)).len(), 1);
    }

    #[test]
    fn from_device_copies_attributes() {
        let d = Device {
            id: DeviceId(9),
            network: NetworkId(2),
            model: DeviceModel { vendor: Vendor::Nettle, line: 7 },
            role: Role::LoadBalancer,
            firmware: Firmware { major: 3, minor: 1, patch: 4 },
        };
        let r = InventoryRecord::from_device(&d, "dc2/r9");
        assert_eq!(r.device, d.id);
        assert_eq!(r.model, d.model);
        assert_eq!(r.location, "dc2/r9");
    }
}
