//! Model-layer errors.

use std::fmt;

/// Errors raised while constructing or validating model entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Month number outside 1..=12.
    InvalidMonth {
        /// Offending year.
        year: u16,
        /// Offending month value.
        month: u8,
    },
    /// An entity failed structural validation.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidMonth { year, month } => {
                write!(f, "invalid month {year:04}-{month:02}: month must be 1..=12")
            }
            ModelError::Invalid(msg) => write!(f, "invalid model entity: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidMonth { year: 2013, month: 13 };
        assert!(e.to_string().contains("2013-13"));
        let e = ModelError::Invalid("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
