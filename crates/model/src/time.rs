//! Study-period calendar.
//!
//! The paper's datasets cover 17 months, August 2013 through December 2014
//! (Table 2). We model time with two types:
//!
//! * [`Month`] — a calendar month identified by `(year, month)`; the unit of
//!   aggregation for every practice metric and health measure.
//! * [`Timestamp`] — minutes since the start of the study period; the
//!   resolution at which configuration snapshots are recorded. Minutes are
//!   sufficient because the change-event grouping heuristic (§2.2 of the
//!   paper) operates on windows of 1–30 minutes.
//!
//! The calendar is deliberately simple (no time zones, no leap seconds): the
//! study period is a fixed, named range and all arithmetic is integral, which
//! keeps generated datasets bit-reproducible across platforms.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minutes in a day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

/// A calendar month, e.g. `2013-08`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Month {
    /// Four-digit year.
    pub year: u16,
    /// Month of year, 1-based (1 = January).
    pub month: u8,
}

impl Month {
    /// Construct a month, validating `1 <= month <= 12`.
    pub fn new(year: u16, month: u8) -> Result<Self, ModelError> {
        if !(1..=12).contains(&month) {
            return Err(ModelError::InvalidMonth { year, month });
        }
        Ok(Self { year, month })
    }

    /// Number of days in this month. February is always 28 days: the study
    /// period (2013-08 .. 2014-12) contains no leap year, and a fixed-length
    /// February keeps the calendar trivially correct for any synthetic range.
    pub fn days(self) -> u8 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => 28,
            _ => unreachable!("validated on construction"),
        }
    }

    /// The month immediately after this one.
    pub fn next(self) -> Self {
        if self.month == 12 {
            Self { year: self.year + 1, month: 1 }
        } else {
            Self { year: self.year, month: self.month + 1 }
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// Minutes since the start of the study period.
///
/// `Timestamp` is an opaque monotonic counter; convert to a month index with
/// [`StudyPeriod::month_of`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Minutes elapsed since the study start.
    #[inline]
    pub const fn minutes(self) -> u64 {
        self.0
    }

    /// Absolute difference in minutes between two timestamps.
    #[inline]
    pub const fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Timestamp advanced by `minutes`.
    #[inline]
    pub const fn plus_minutes(self, minutes: u64) -> Timestamp {
        Timestamp(self.0 + minutes)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}m", self.0)
    }
}

/// A contiguous range of months with conversion between [`Timestamp`]s and
/// month indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyPeriod {
    start: Month,
    months: Vec<Month>,
    /// `offsets[i]` = first minute of month `i`; a final sentinel holds the
    /// total length, so `offsets.len() == months.len() + 1`.
    offsets: Vec<u64>,
}

impl StudyPeriod {
    /// A period of `n_months` starting at `start`.
    pub fn new(start: Month, n_months: usize) -> Self {
        assert!(n_months > 0, "study period must contain at least one month");
        let mut months = Vec::with_capacity(n_months);
        let mut offsets = Vec::with_capacity(n_months + 1);
        let mut m = start;
        let mut off = 0u64;
        for _ in 0..n_months {
            months.push(m);
            offsets.push(off);
            off += u64::from(m.days()) * MINUTES_PER_DAY;
            m = m.next();
        }
        offsets.push(off);
        Self { start, months, offsets }
    }

    /// The paper's study period: 17 months, 2013-08 through 2014-12.
    pub fn paper() -> Self {
        Self::new(Month { year: 2013, month: 8 }, 17)
    }

    /// Number of months in the period.
    #[inline]
    pub fn n_months(&self) -> usize {
        self.months.len()
    }

    /// The months, in order.
    #[inline]
    pub fn months(&self) -> &[Month] {
        &self.months
    }

    /// The month at index `ix` (0-based).
    #[inline]
    pub fn month(&self, ix: usize) -> Month {
        self.months[ix]
    }

    /// Total length of the period in minutes.
    #[inline]
    pub fn total_minutes(&self) -> u64 {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// First minute of month `ix`.
    #[inline]
    pub fn month_start(&self, ix: usize) -> Timestamp {
        Timestamp(self.offsets[ix])
    }

    /// One-past-the-last minute of month `ix`.
    #[inline]
    pub fn month_end(&self, ix: usize) -> Timestamp {
        Timestamp(self.offsets[ix + 1])
    }

    /// Index of the month containing `t`, or `None` if `t` is outside the
    /// period.
    pub fn month_of(&self, t: Timestamp) -> Option<usize> {
        if t.0 >= self.total_minutes() {
            return None;
        }
        // offsets is sorted; partition_point finds the first offset > t.
        let ix = self.offsets.partition_point(|&o| o <= t.0);
        Some(ix - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_validation() {
        assert!(Month::new(2013, 0).is_err());
        assert!(Month::new(2013, 13).is_err());
        assert!(Month::new(2013, 8).is_ok());
    }

    #[test]
    fn month_days() {
        assert_eq!(Month::new(2013, 8).unwrap().days(), 31);
        assert_eq!(Month::new(2013, 9).unwrap().days(), 30);
        assert_eq!(Month::new(2014, 2).unwrap().days(), 28);
        assert_eq!(Month::new(2014, 12).unwrap().days(), 31);
    }

    #[test]
    fn month_next_wraps_year() {
        let dec = Month::new(2013, 12).unwrap();
        assert_eq!(dec.next(), Month::new(2014, 1).unwrap());
    }

    #[test]
    fn month_display() {
        assert_eq!(Month::new(2013, 8).unwrap().to_string(), "2013-08");
    }

    #[test]
    fn paper_period_shape() {
        let p = StudyPeriod::paper();
        assert_eq!(p.n_months(), 17);
        assert_eq!(p.month(0).to_string(), "2013-08");
        assert_eq!(p.month(16).to_string(), "2014-12");
        // Aug 2013 .. Dec 2014 inclusive: 153 + 365 = 518 days.
        assert_eq!(p.total_minutes(), 518 * MINUTES_PER_DAY);
    }

    #[test]
    fn month_of_boundaries() {
        let p = StudyPeriod::paper();
        assert_eq!(p.month_of(Timestamp(0)), Some(0));
        let aug_len = 31 * MINUTES_PER_DAY;
        assert_eq!(p.month_of(Timestamp(aug_len - 1)), Some(0));
        assert_eq!(p.month_of(Timestamp(aug_len)), Some(1));
        assert_eq!(p.month_of(Timestamp(p.total_minutes())), None);
        assert_eq!(p.month_of(Timestamp(p.total_minutes() - 1)), Some(16));
    }

    #[test]
    fn month_start_end_partition_period() {
        let p = StudyPeriod::paper();
        for i in 0..p.n_months() {
            assert!(p.month_start(i) < p.month_end(i));
            if i > 0 {
                assert_eq!(p.month_end(i - 1), p.month_start(i));
            }
        }
        assert_eq!(p.month_end(16).0, p.total_minutes());
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t.plus_minutes(5), Timestamp(105));
        assert_eq!(t.abs_diff(Timestamp(95)), 5);
        assert_eq!(Timestamp(95).abs_diff(t), 5);
    }
}
