//! Devices and their hardware/software identity.
//!
//! Inventory records describe each device by *vendor*, *model*, *role* and
//! *firmware version* (paper §2.1, data source 1). Those four attributes feed
//! the design-practice metrics D2 (counts) and D3 (hardware and firmware
//! heterogeneity entropy).
//!
//! Vendors here are fictional but structurally faithful: each vendor speaks
//! one of two configuration dialects (block-keyword "IOS-like" or
//! brace-hierarchical "JunOS-like"), which is what drives the cross-vendor
//! change-typing quirks the paper describes in §2.2.

use crate::ids::{DeviceId, NetworkId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A network equipment vendor.
///
/// Six vendors, matching the maximum per-network vendor count observed in the
/// paper's Appendix A ("over 81% of networks contain devices from more than
/// one vendor, with a maximum of 6").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// IOS-like dialect; the dominant router/switch vendor.
    Cirrus,
    /// JunOS-like dialect; the second router/switch vendor.
    Junia,
    /// IOS-like dialect; switches and firewalls.
    Aristotle,
    /// JunOS-like dialect; firewalls.
    Fortima,
    /// IOS-like dialect; load balancers and ADCs.
    Balancio,
    /// JunOS-like dialect; load balancers and ADCs.
    Nettle,
}

impl Vendor {
    /// All vendors, in a fixed order.
    pub const ALL: [Vendor; 6] = [
        Vendor::Cirrus,
        Vendor::Junia,
        Vendor::Aristotle,
        Vendor::Fortima,
        Vendor::Balancio,
        Vendor::Nettle,
    ];

    /// The configuration dialect this vendor's devices speak.
    pub fn dialect(self) -> Dialect {
        match self {
            Vendor::Cirrus | Vendor::Aristotle | Vendor::Balancio => Dialect::BlockKeyword,
            Vendor::Junia | Vendor::Fortima | Vendor::Nettle => Dialect::BraceHierarchy,
        }
    }

    /// Short lowercase name used in device hostnames and config banners.
    pub fn short_name(self) -> &'static str {
        match self {
            Vendor::Cirrus => "cirrus",
            Vendor::Junia => "junia",
            Vendor::Aristotle => "aristotle",
            Vendor::Fortima => "fortima",
            Vendor::Balancio => "balancio",
            Vendor::Nettle => "nettle",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Configuration language family spoken by a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dialect {
    /// Flat, keyword-introduced stanzas terminated by `!` (Cisco-IOS-like).
    BlockKeyword,
    /// Nested brace hierarchy (JunOS-like).
    BraceHierarchy,
}

/// The role a device plays in its network (paper Table 1, line D2).
///
/// A device has exactly one role ("no single device has more than one role",
/// Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Layer-3 packet forwarding.
    Router,
    /// Layer-2 forwarding.
    Switch,
    /// Packet filtering middlebox.
    Firewall,
    /// Server-pool load balancing middlebox.
    LoadBalancer,
    /// Application delivery controller (TCP/SSL offload, HTTP caching, ...).
    Adc,
}

impl Role {
    /// All roles, in a fixed order.
    pub const ALL: [Role; 5] =
        [Role::Router, Role::Switch, Role::Firewall, Role::LoadBalancer, Role::Adc];

    /// Whether the paper classifies this role as a middlebox
    /// ("71% of networks contain at least one middlebox (firewall, ADC, or
    /// load balancer)", Appendix A.1).
    pub fn is_middlebox(self) -> bool {
        matches!(self, Role::Firewall | Role::LoadBalancer | Role::Adc)
    }

    /// Short name used in hostnames.
    pub fn short_name(self) -> &'static str {
        match self {
            Role::Router => "rtr",
            Role::Switch => "sw",
            Role::Firewall => "fw",
            Role::LoadBalancer => "lb",
            Role::Adc => "adc",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A hardware model: a vendor's product line identified by a line number.
///
/// Model identity (vendor + line) is what the hardware-heterogeneity entropy
/// metric is computed over; the catalog in `mpa-synth` assigns lines to roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Manufacturer.
    pub vendor: Vendor,
    /// Product line number within the vendor's catalog.
    pub line: u16,
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.vendor, self.line)
    }
}

/// A firmware version, `major.minor(patch)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Firmware {
    /// Major release train.
    pub major: u8,
    /// Minor release.
    pub minor: u8,
    /// Patch level.
    pub patch: u8,
}

impl fmt::Display for Firmware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}({})", self.major, self.minor, self.patch)
    }
}

/// A managed device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Organization-wide unique identifier.
    pub id: DeviceId,
    /// The network this device belongs to.
    pub network: NetworkId,
    /// Hardware model.
    pub model: DeviceModel,
    /// Role in the network.
    pub role: Role,
    /// Installed firmware version.
    pub firmware: Firmware,
}

impl Device {
    /// Manufacturer (shorthand for `self.model.vendor`).
    #[inline]
    pub fn vendor(&self) -> Vendor {
        self.model.vendor
    }

    /// Configuration dialect spoken by this device.
    #[inline]
    pub fn dialect(&self) -> Dialect {
        self.vendor().dialect()
    }

    /// Hostname, e.g. `net3-sw-dev42`: stable, human-readable, and unique.
    pub fn hostname(&self) -> String {
        format!("net{}-{}-dev{}", self.network.0, self.role.short_name(), self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vendor_has_a_dialect_and_both_dialects_occur() {
        let mut block = 0;
        let mut brace = 0;
        for v in Vendor::ALL {
            match v.dialect() {
                Dialect::BlockKeyword => block += 1,
                Dialect::BraceHierarchy => brace += 1,
            }
        }
        assert_eq!(block, 3);
        assert_eq!(brace, 3);
    }

    #[test]
    fn middlebox_classification_matches_paper() {
        assert!(!Role::Router.is_middlebox());
        assert!(!Role::Switch.is_middlebox());
        assert!(Role::Firewall.is_middlebox());
        assert!(Role::LoadBalancer.is_middlebox());
        assert!(Role::Adc.is_middlebox());
    }

    #[test]
    fn display_formats() {
        let m = DeviceModel { vendor: Vendor::Cirrus, line: 4500 };
        assert_eq!(m.to_string(), "cirrus-4500");
        let fw = Firmware { major: 15, minor: 2, patch: 3 };
        assert_eq!(fw.to_string(), "15.2(3)");
    }

    #[test]
    fn hostname_is_stable_and_descriptive() {
        let d = Device {
            id: DeviceId(42),
            network: NetworkId(3),
            model: DeviceModel { vendor: Vendor::Junia, line: 12 },
            role: Role::Switch,
            firmware: Firmware { major: 12, minor: 1, patch: 0 },
        };
        assert_eq!(d.hostname(), "net3-sw-dev42");
        assert_eq!(d.dialect(), Dialect::BraceHierarchy);
    }

    #[test]
    fn vendor_names_are_unique() {
        let mut names: Vec<_> = Vendor::ALL.iter().map(|v| v.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Vendor::ALL.len());
    }
}
