//! Networks and workloads.
//!
//! An organization partitions its devices across *networks*: "a collection of
//! devices that either connects compute equipment that hosts specific
//! workloads or connects other networks to each other or the external world"
//! (paper §2). A *workload* is a service or a group of users.

use crate::device::Device;
use crate::ids::{DeviceId, NetworkId};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a network exists to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkPurpose {
    /// Hosts one or more workloads (the common case: 81% of the OSP's
    /// networks host exactly one workload).
    Hosting,
    /// Connects other networks to each other or to the external world and
    /// hosts no workload itself.
    Interconnect,
}

/// A hosted service or user group.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Organization-wide service identifier (services are shared: two
    /// networks may host replicas of the same service).
    pub service: u32,
    /// Human-readable name.
    pub name: String,
}

/// A managed network: purpose, member devices and physical topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// Identifier.
    pub id: NetworkId,
    /// Why the network exists.
    pub purpose: NetworkPurpose,
    /// Hosted workloads (empty iff `purpose == Interconnect`).
    pub workloads: Vec<Workload>,
    /// Member devices.
    pub devices: Vec<Device>,
    /// Physical links between member devices.
    pub topology: Topology,
}

impl Network {
    /// Number of member devices.
    #[inline]
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// Look up a member device by id (linear scan; networks are small).
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.iter().find(|d| d.id == id)
    }

    /// Whether the network contains at least one middlebox
    /// (firewall, load balancer or ADC).
    pub fn has_middlebox(&self) -> bool {
        self.devices.iter().any(|d| d.role.is_middlebox())
    }

    /// Validate internal consistency: every device claims membership of this
    /// network, ids are unique, and every topology endpoint is a member.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for d in &self.devices {
            if d.network != self.id {
                return Err(format!("device {} claims network {}, not {}", d.id, d.network, self.id));
            }
            if !seen.insert(d.id) {
                return Err(format!("duplicate device id {}", d.id));
            }
        }
        for link in self.topology.links() {
            if !seen.contains(&link.a) || !seen.contains(&link.b) {
                return Err(format!("link {}–{} references a non-member device", link.a, link.b));
            }
        }
        if self.purpose == NetworkPurpose::Interconnect && !self.workloads.is_empty() {
            return Err("interconnect network must not host workloads".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} devices, {:?})", self.id, self.size(), self.purpose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceModel, Firmware, Role, Vendor};
    use crate::topology::Link;

    fn dev(id: u32, net: u32, role: Role) -> Device {
        Device {
            id: DeviceId(id),
            network: NetworkId(net),
            model: DeviceModel { vendor: Vendor::Cirrus, line: 1 },
            role,
            firmware: Firmware { major: 1, minor: 0, patch: 0 },
        }
    }

    fn simple_net() -> Network {
        let mut topo = Topology::default();
        topo.add_link(Link::new(DeviceId(0), DeviceId(1)));
        Network {
            id: NetworkId(7),
            purpose: NetworkPurpose::Hosting,
            workloads: vec![Workload { service: 1, name: "web".into() }],
            devices: vec![dev(0, 7, Role::Router), dev(1, 7, Role::Switch)],
            topology: topo,
        }
    }

    #[test]
    fn valid_network_passes_validation() {
        assert_eq!(simple_net().validate(), Ok(()));
    }

    #[test]
    fn device_lookup() {
        let n = simple_net();
        assert!(n.device(DeviceId(1)).is_some());
        assert!(n.device(DeviceId(99)).is_none());
    }

    #[test]
    fn wrong_membership_fails_validation() {
        let mut n = simple_net();
        n.devices[0].network = NetworkId(8);
        assert!(n.validate().is_err());
    }

    #[test]
    fn duplicate_device_fails_validation() {
        let mut n = simple_net();
        n.devices.push(dev(0, 7, Role::Firewall));
        assert!(n.validate().is_err());
    }

    #[test]
    fn dangling_link_fails_validation() {
        let mut n = simple_net();
        n.topology.add_link(Link::new(DeviceId(0), DeviceId(5)));
        assert!(n.validate().is_err());
    }

    #[test]
    fn interconnect_with_workload_fails_validation() {
        let mut n = simple_net();
        n.purpose = NetworkPurpose::Interconnect;
        assert!(n.validate().is_err());
    }

    #[test]
    fn middlebox_detection() {
        let mut n = simple_net();
        assert!(!n.has_middlebox());
        n.devices.push(dev(2, 7, Role::LoadBalancer));
        assert!(n.has_middlebox());
    }
}
