//! # mpa-model — domain model substrate for Management Plane Analytics
//!
//! This crate defines the vocabulary shared by the whole MPA workspace: the
//! entities an organization's *inventory records* describe (networks, devices,
//! vendors, models, roles, firmware), the physical *topology* connecting
//! devices, the *trouble tickets* an incident-management system records, and a
//! small deterministic *calendar* for the study period.
//!
//! The types here are deliberately plain data: they carry no behaviour beyond
//! construction, validation and cheap derived accessors. All analytics lives
//! in downstream crates (`mpa-metrics`, `mpa-stats`, `mpa-core`), and all data
//! synthesis in `mpa-synth`. Keeping the model inert makes every downstream
//! computation testable against hand-built fixtures.
//!
//! ## Entity relationships
//!
//! ```text
//! Organization (implicit; see mpa-synth)
//!   └── Network (id, purpose, workloads)
//!         ├── Device (vendor, model, role, firmware)
//!         ├── Link   (unordered device pair)
//!         └── Ticket (opened/resolved time, kind, devices)
//! ```
//!
//! Everything is serde-serializable so datasets can be exported and re-loaded
//! by the CLI and the reproduction harness.

pub mod device;
pub mod error;
pub mod ids;
pub mod inventory;
pub mod network;
pub mod ticket;
pub mod time;
pub mod topology;

pub use device::{Device, DeviceModel, Firmware, Role, Vendor};
pub use error::ModelError;
pub use ids::{DeviceId, NetworkId, TicketId};
pub use inventory::{Inventory, InventoryRecord};
pub use network::{Network, NetworkPurpose, Workload};
pub use ticket::{Ticket, TicketKind, TicketSeverity};
pub use time::{Month, StudyPeriod, Timestamp, MINUTES_PER_DAY};
pub use topology::{Link, Topology};
