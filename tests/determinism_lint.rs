//! Tier-1 enforcement of the determinism contract: a plain `cargo test -q`
//! at the workspace root runs the same scan as the `mpa-lint` binary and
//! fails on any non-waived finding, with the offending file:line in the
//! message. (CI's `--workspace` run additionally exercises the lint's own
//! fixture suite under `crates/lint/tests/`.)

#[test]
fn workspace_has_zero_unwaived_audit_findings() {
    // Graph mode: line rules R1–R6 plus the reachability families R7–R10
    // (panic-safety, hot-path allocation, lock discipline, dead counters)
    // over the call graph rooted at `audit_roots.txt`.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mpa_lint::audit_workspace(root).expect("workspace audit");
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt))
        .collect();
    assert!(
        violations.is_empty(),
        "audit violations (fix them or add a justified waiver):\n{}",
        violations.join("\n")
    );
}

#[test]
fn workspace_has_zero_unwaived_lint_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mpa_lint::scan_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}); wrong root?",
        report.files_scanned
    );
    let violations: Vec<String> = report
        .violations()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt))
        .collect();
    assert!(
        violations.is_empty(),
        "determinism-contract violations (fix them or add a justified waiver):\n{}",
        violations.join("\n")
    );
}
