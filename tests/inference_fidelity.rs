//! Inference-fidelity integration: the metrics recovered from raw data
//! (snapshots, inventory, tickets) must agree with the generator's ground
//! truth — the end-to-end correctness check for the whole §2 pipeline.

use mpa::prelude::*;
use mpa_bench::fixtures;

#[test]
fn inferred_tickets_match_ground_truth_exactly() {
    let fx = fixtures::small();
    for case in fx.table().cases() {
        let truth = fx.dataset.truth(case.network, case.month).expect("truth row");
        assert_eq!(
            case.tickets,
            f64::from(truth.incident_tickets),
            "{}/{} (maintenance must be excluded)",
            case.network,
            case.month
        );
    }
}

#[test]
fn inferred_event_counts_track_simulated_events() {
    let fx = fixtures::small();
    let mut total_true = 0.0;
    let mut total_inferred = 0.0;
    for case in fx.table().cases() {
        let truth = fx.dataset.truth(case.network, case.month).expect("truth row");
        total_true += f64::from(truth.n_events);
        total_inferred += case.value(Metric::ChangeEvents);
    }
    let ratio = total_inferred / total_true;
    // Events can merge when two simulated events land within δ, so inferred
    // is a slight undercount; it must never overcount.
    assert!((0.70..=1.02).contains(&ratio), "event recovery ratio {ratio}");
}

#[test]
fn inferred_change_type_fractions_track_truth() {
    let fx = fixtures::small();
    // Exact agreement is not expected: when two simulated events land
    // within δ of each other the inferred event inherits both type sets,
    // inflating per-event fractions. The inferred fraction must still
    // track the true one strongly.
    let mut pairs = Vec::new();
    for case in fx.table().cases() {
        let truth = fx.dataset.truth(case.network, case.month).expect("truth row");
        if truth.n_events < 5 {
            continue; // fractions are noisy on quiet months
        }
        pairs.push((case.value(Metric::FracAclEvents), truth.frac_acl_events));
    }
    assert!(pairs.len() > 30);
    let inferred: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let truth: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let r = mpa::stats::pearson(&inferred, &truth);
    assert!(r > 0.6, "ACL-fraction inference should track truth: r = {r}");
    // Note: inference may report ACL activity in a month whose ground truth
    // had none — changes made during an unlogged month surface in the next
    // logged month's first diff. That is correct behaviour for an archive
    // with gaps, so no zero-matching assertion is made here.
}

#[test]
fn inferred_automation_matches_profile_scale() {
    let fx = fixtures::small();
    let mut auto = Vec::new();
    for case in fx.table().cases() {
        let truth = fx.dataset.truth(case.network, case.month).expect("truth row");
        if truth.n_events < 5 {
            continue;
        }
        auto.push((case.value(Metric::FracAutomated), truth.frac_automated));
    }
    assert!(auto.len() > 30);
    let inferred: Vec<f64> = auto.iter().map(|p| p.0).collect();
    let truth: Vec<f64> = auto.iter().map(|p| p.1).collect();
    let r = mpa::stats::pearson(&inferred, &truth);
    assert!(r > 0.5, "automation inference should correlate with truth: r = {r}");
}

#[test]
fn design_metrics_match_the_inventory() {
    let fx = fixtures::small();
    for case in fx.table().cases().iter().take(100) {
        let net = fx.dataset.network(case.network).expect("network exists");
        assert_eq!(case.value(Metric::Devices), net.size() as f64);
        let vendors: std::collections::BTreeSet<_> =
            net.devices.iter().map(|d| d.vendor()).collect();
        assert_eq!(case.value(Metric::Vendors), vendors.len() as f64);
        let entropy = case.value(Metric::HardwareEntropy);
        assert!((0.0..=1.0).contains(&entropy));
    }
}

#[test]
fn routing_instances_are_recovered_from_config_text() {
    // At least some networks must show >1 BGP instance (the generator
    // partitions routers into meshes), and the mean instance size must be
    // consistent with the member count.
    let fx = fixtures::small();
    let mut multi_instance = 0;
    for case in fx.table().cases() {
        let n_inst = case.value(Metric::BgpInstances);
        if n_inst > 1.0 {
            multi_instance += 1;
        }
        if n_inst > 0.0 {
            let avg = case.value(Metric::AvgBgpInstanceSize);
            assert!(avg >= 1.0, "instance size {avg}");
            assert!(
                avg * n_inst <= case.value(Metric::Devices) + 1e-9,
                "instances cannot contain more devices than the network"
            );
        }
    }
    // Loose bound: the exact count depends on the RNG stream; what matters
    // is that mesh partitioning shows up in a non-trivial share of cases.
    assert!(multi_instance > 10, "multi-instance BGP networks: {multi_instance}");
}

#[test]
fn delta_sensitivity_matches_figure_3() {
    // Monotonicity across δ re-groupings at the dataset level.
    let fx = fixtures::tiny();
    let fine = mpa::metrics::pipeline::infer(&fx.dataset, 1);
    let default = mpa::metrics::pipeline::infer(&fx.dataset, 5);
    let coarse = mpa::metrics::pipeline::infer(&fx.dataset, 30);
    let total = |t: &CaseTable| -> f64 { t.column(Metric::ChangeEvents).iter().sum() };
    assert!(total(&fine.table) >= total(&default.table));
    assert!(total(&default.table) >= total(&coarse.table));
}
