//! The execution engine's core guarantee: pipeline output is bit-for-bit
//! identical at any worker-thread count.
//!
//! One test drives the full pipeline — generation, inference, MI ranking,
//! causal (QED) analysis, forest training, cross-validation and online
//! evaluation — at 1, 2 and 8 threads and asserts the results are equal.
//! (A single test function, because the thread count is process-global and
//! the test harness runs functions concurrently.)

use mpa::analytics::exec;
use mpa::learn::{ForestConfig, RandomForest};
use mpa::prelude::*;

/// Everything the pipeline produces downstream of the case table, captured
/// in comparable form.
#[derive(PartialEq, Debug)]
struct PipelineOutputs {
    table: CaseTable,
    mi: Vec<mpa::analytics::MiEntry>,
    qed: mpa::analytics::CausalAnalysis,
    forest: String,
    cv: String,
    online: String,
}

#[test]
fn pipeline_output_is_identical_at_1_2_and_8_threads() {
    let saved = exec::threads();
    let mut reference: Option<PipelineOutputs> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);

        let dataset = Scenario::tiny().generate();
        let table = infer_case_table(&dataset);
        let out = PipelineOutputs {
            mi: mi_ranking(&table, 10),
            qed: analyze_treatment(&table, Metric::ConfigChanges, &CausalConfig::default()),
            forest: {
                let set = build_learnset(&table, HealthClasses::Two);
                format!("{:?}", RandomForest::fit(&set, ForestConfig::default()))
            },
            cv: format!(
                "{:?}",
                cross_validation(&table, HealthClasses::Two, ModelKind::DtAbOs, 7)
            ),
            online: format!(
                "{:?}",
                online_accuracy(&table, HealthClasses::Two, ModelKind::DtAbOs, 6)
            ),
            table,
        };

        match &reference {
            None => reference = Some(out),
            Some(r0) => {
                assert_eq!(r0.table, out.table, "case table diverged at {threads} threads");
                assert_eq!(r0.mi, out.mi, "MI ranking diverged at {threads} threads");
                assert_eq!(r0.qed, out.qed, "QED analysis diverged at {threads} threads");
                assert_eq!(r0.forest, out.forest, "forest diverged at {threads} threads");
                assert_eq!(r0.cv, out.cv, "cross-validation diverged at {threads} threads");
                assert_eq!(r0.online, out.online, "online eval diverged at {threads} threads");
            }
        }
    }
    exec::set_threads(saved);
}
