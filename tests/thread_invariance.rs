//! The execution engine's core guarantee: pipeline output is bit-for-bit
//! identical at any worker-thread count.
//!
//! One test drives the full pipeline — generation, inference, MI ranking,
//! forest training, cross-validation — at 1, 2 and 8 threads and asserts
//! the results are equal. (A single test function, because the thread
//! count is process-global and the test harness runs functions
//! concurrently.)

use mpa::analytics::exec;
use mpa::learn::{ForestConfig, RandomForest};
use mpa::prelude::*;

#[test]
fn pipeline_output_is_identical_at_1_2_and_8_threads() {
    let saved = exec::threads();
    let mut reference: Option<(CaseTable, Vec<mpa::analytics::MiEntry>, String, String)> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);

        let dataset = Scenario::tiny().generate();
        let table = infer_case_table(&dataset);
        let mi = mi_ranking(&table, 10);
        let set = build_learnset(&table, HealthClasses::Two);
        let forest = format!("{:?}", RandomForest::fit(&set, ForestConfig::default()));
        let cv = format!(
            "{:?}",
            cross_validation(&table, HealthClasses::Two, ModelKind::DtAbOs, 7)
        );

        match &reference {
            None => reference = Some((table, mi, forest, cv)),
            Some((t0, m0, f0, c0)) => {
                assert_eq!(t0, &table, "case table diverged at {threads} threads");
                assert_eq!(m0, &mi, "MI ranking diverged at {threads} threads");
                assert_eq!(f0, &forest, "forest diverged at {threads} threads");
                assert_eq!(c0, &cv, "cross-validation diverged at {threads} threads");
            }
        }
    }
    exec::set_threads(saved);
}
