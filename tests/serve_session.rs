//! Ingest-equals-batch, as a property: feeding random event batches
//! through [`AnalyticsSession::ingest`] must leave the session in exactly
//! the state a **cold** session built over the extended corpus would
//! have — byte-identical case-table JSON and byte-identical `mpa-serve`
//! view renders. This is the consistency contract the daemon's `/ingest`
//! endpoint advertises; the serve crate's own integration tests pin the
//! HTTP layer to the session, and this test pins the session to the cold
//! batch run.
//!
//! Batches mix the two event streams: "no-op touch" snapshots (a device's
//! tip config re-stated with one appended comment line, one minute later)
//! and fresh tickets against random networks.

use mpa::analytics::{AnalyticsSession, IngestBatch, SessionConfig};
use mpa::config::{Snapshot, SnapshotMeta};
use mpa::model::{DeviceId, TicketId, TicketKind, TicketSeverity, Timestamp};
use mpa::prelude::*;
use mpa_serve::views;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A snapshot that re-states `dev`'s newest config with one appended
/// comment line, `bump` minutes after the device's current tip.
fn touch_snapshot(ds: &Dataset, dev: DeviceId, bump: u64) -> Snapshot {
    let metas = ds.archive.device_metas(dev);
    let last = metas.last().expect("device has snapshots");
    let tip = ds.archive.latest_at(dev, last.time).expect("tip snapshot exists");
    let mut text = tip.text;
    text.push_str("! serve-session probe\n");
    Snapshot {
        meta: SnapshotMeta {
            device: dev,
            time: Timestamp(last.time.0 + bump),
            login: tip.meta.login,
        },
        text,
    }
}

/// Build one batch from the picks: each device pick becomes a touch
/// snapshot (times strictly increasing per device within the batch), each
/// network pick a fresh ticket.
fn build_batch(
    ds: &Dataset,
    dev_picks: &[usize],
    net_picks: &[usize],
    ticket_id_base: u32,
) -> IngestBatch {
    let devices: Vec<DeviceId> =
        ds.networks.iter().flat_map(|n| n.devices.iter().map(|d| d.id)).collect();
    let horizon = ds.period.total_minutes();
    let mut bumps: BTreeMap<DeviceId, u64> = BTreeMap::new();
    let snapshots = dev_picks
        .iter()
        .map(|&p| {
            let dev = devices[p % devices.len()];
            let bump = bumps.entry(dev).or_insert(0);
            *bump += 1;
            touch_snapshot(ds, dev, *bump)
        })
        .collect();
    let tickets = net_picks
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let net = ds.networks[p % ds.networks.len()].id;
            Ticket {
                id: TicketId(ticket_id_base + i as u32),
                network: net,
                kind: TicketKind::MonitoringAlarm,
                opened: Timestamp(horizon.saturating_sub(1 + i as u64)),
                resolved: None,
                devices: vec![],
                severity: TicketSeverity::Medium,
                symptom: "serve-session probe".to_string(),
            }
        })
        .collect();
    IngestBatch { snapshots, tickets }
}

/// Render every corpus-derived serve view. `/healthz` is excluded on
/// purpose: it reports `events_applied`, which is session metadata (how
/// the corpus got here), not corpus state.
fn render_views(session: &mut AnalyticsSession) -> Vec<String> {
    session.refresh();
    let mut out = Vec::new();
    let nets: Vec<NetworkId> = session.dataset().networks.iter().map(|n| n.id).collect();
    for net in nets {
        if let Some(v) = views::practices(session, net) {
            out.push(v);
        }
    }
    let analytics = session.analytics_cached().expect("just refreshed");
    out.push(views::mi_ranking(analytics));
    out.push(views::causal_summary(analytics));
    out.push(views::predict_overview(session, analytics));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ingest_leaves_the_session_identical_to_a_cold_batch_run(
        seed in 0u64..1_000,
        dev_picks in proptest::collection::vec(0usize..1_000, 1..6),
        net_picks in proptest::collection::vec(0usize..1_000, 0..4),
    ) {
        let dataset = Scenario::tiny().with_seed(seed).generate();
        let config = SessionConfig::default();
        let batch = build_batch(&dataset, &dev_picks, &net_picks, 800_000);

        // Online path: resident session, one ingest.
        let mut online = AnalyticsSession::new(dataset.clone(), config);
        let outcome = online.ingest(batch.clone()).expect("valid batch accepted");
        prop_assert_eq!(outcome.snapshots, batch.snapshots.len());
        prop_assert_eq!(outcome.tickets, batch.tickets.len());

        // Cold path: extend the corpus first, then build from scratch.
        let mut extended = dataset;
        for snap in batch.snapshots {
            extended.archive.push(snap).expect("ordered snapshot");
        }
        extended.tickets.extend(batch.tickets);
        let mut cold = AnalyticsSession::new(extended, config);

        let online_table = serde_json::to_string(online.table()).expect("serializes");
        let cold_table = serde_json::to_string(cold.table()).expect("serializes");
        prop_assert_eq!(online_table, cold_table);
        prop_assert_eq!(render_views(&mut online), render_views(&mut cold));
    }
}
