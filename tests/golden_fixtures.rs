//! Golden-file regression tests: the small-seed pipeline outputs are
//! committed as JSON fixtures under `tests/golden/` and byte-compared on
//! every run, so a storage- or parsing-layer rewrite cannot silently shift
//! results. Regenerate intentionally with:
//!
//! ```text
//! MPA_GOLDEN_WRITE=1 cargo test --test golden_fixtures
//! ```
//!
//! The fixtures cover the three analytic layers the paper reports on: the
//! inferred case table (§2), the MI practice ranking (§4, Table 3) and a
//! QED causal summary (§5, Table 7).

use mpa::prelude::*;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Render every fixture from a fresh small-seed pipeline run.
fn render_fixtures() -> Vec<(&'static str, String)> {
    let dataset = Scenario::small().generate();
    let table = infer_case_table(&dataset);
    let mi = mi_ranking(&table, 10);
    // The paper's Table 7 treatment of interest; any fixed metric works —
    // what matters is that the matched-design arithmetic is pinned.
    let qed = analyze_treatment(&table, Metric::ConfigChanges, &CausalConfig::default());
    vec![
        ("summary_small.json", serde_json::to_string(&dataset.summary()).expect("serializes")),
        ("case_table_small.json", serde_json::to_string(&table).expect("serializes")),
        ("mi_ranking_small.json", serde_json::to_string(&mi).expect("serializes")),
        ("qed_config_changes_small.json", serde_json::to_string(&qed).expect("serializes")),
    ]
}

#[test]
fn small_seed_outputs_match_golden_fixtures() {
    let dir = golden_dir();
    let write = std::env::var("MPA_GOLDEN_WRITE").is_ok_and(|v| v == "1");
    if write {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for (name, rendered) in render_fixtures() {
        let path = dir.join(name);
        if write {
            std::fs::write(&path, &rendered).expect("write fixture");
            continue;
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        assert_eq!(
            committed,
            rendered,
            "{name} drifted from the committed fixture; if the change is \
             intentional, regenerate with MPA_GOLDEN_WRITE=1"
        );
    }
}

#[test]
fn both_infer_modes_reproduce_the_golden_case_table() {
    // The committed case table is the oracle for the delta-native engine:
    // both modes must reproduce it byte-for-byte, so an incremental-path
    // bug cannot hide behind a same-session full-path regression.
    if std::env::var("MPA_GOLDEN_WRITE").is_ok_and(|v| v == "1") {
        return; // fixtures are being rewritten by the test above
    }
    let committed = std::fs::read_to_string(golden_dir().join("case_table_small.json"))
        .expect("committed case-table fixture");
    let dataset = Scenario::small().generate();
    for mode in [InferMode::Full, InferMode::Delta] {
        let table =
            infer_with_mode(&dataset, mpa::metrics::DELTA_DEFAULT_MINUTES, mode).table;
        let rendered = serde_json::to_string(&table).expect("serializes");
        assert_eq!(
            committed,
            rendered,
            "{} mode diverged from the golden case table",
            mode.label()
        );
    }
}
