//! The delta-native inference engine and the full-parse oracle must be
//! interchangeable: identical change records and byte-identical case
//! tables, at every worker-thread count. (A single test function, because
//! the thread count is process-global and the test harness runs functions
//! concurrently.)

use mpa::analytics::exec;
use mpa::metrics::DELTA_DEFAULT_MINUTES;
use mpa::prelude::*;

#[test]
fn delta_and_full_inference_agree_at_1_2_and_8_threads() {
    let saved = exec::threads();
    let dataset = Scenario::tiny().generate();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);
        let full = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Full);
        let delta = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Delta);
        assert_eq!(
            full.device_changes, delta.device_changes,
            "change records diverged at {threads} threads"
        );
        let full_json = serde_json::to_string(&full.table).expect("serializes");
        let delta_json = serde_json::to_string(&delta.table).expect("serializes");
        assert_eq!(
            full_json, delta_json,
            "case tables must serialize byte-identically at {threads} threads"
        );
        // And both must match the other thread counts' output.
        match &reference {
            None => reference = Some(delta_json),
            Some(r0) => assert_eq!(r0, &delta_json, "table diverged at {threads} threads"),
        }
    }
    exec::set_threads(saved);
}
