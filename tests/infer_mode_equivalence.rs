//! The delta-native inference engine and the full-parse oracle must be
//! interchangeable: identical change records and byte-identical case
//! tables, at every worker-thread count. (A single test function, because
//! the thread count is process-global and the test harness runs functions
//! concurrently.)

use mpa::analytics::exec;
use mpa::metrics::DELTA_DEFAULT_MINUTES;
use mpa::prelude::*;
use mpa::synth::DegradeSpec;
use proptest::prelude::*;

#[test]
fn delta_and_full_inference_agree_at_1_2_and_8_threads() {
    let saved = exec::threads();
    let dataset = Scenario::tiny().generate();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);
        let full = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Full);
        let delta = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Delta);
        assert_eq!(
            full.device_changes, delta.device_changes,
            "change records diverged at {threads} threads"
        );
        let full_json = serde_json::to_string(&full.table).expect("serializes");
        let delta_json = serde_json::to_string(&delta.table).expect("serializes");
        assert_eq!(
            full_json, delta_json,
            "case tables must serialize byte-identically at {threads} threads"
        );
        // And both must match the other thread counts' output.
        match &reference {
            None => reference = Some(delta_json),
            Some(r0) => assert_eq!(r0, &delta_json, "table diverged at {threads} threads"),
        }
    }
    exec::set_threads(saved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The equivalence must also hold on *degraded* corpora: missing
    // snapshot windows, truncated histories, clock-skewed (re-sorted)
    // timestamps, duplicate/corrupt tickets and ambiguous logins, over
    // both dialects and arbitrary seeds. Neither engine may panic, and
    // the degradation accounting must balance exactly.
    #[test]
    fn delta_and_full_agree_on_degraded_corpora(
        seed in 0u64..10_000,
        knobs in (
            0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64,
            0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64,
        ),
    ) {
        let spec = DegradeSpec {
            miss_window: knobs.0,
            truncate: knobs.1,
            reorder: knobs.2,
            dup_ticket: knobs.3,
            corrupt_ticket: knobs.4,
            ambiguous_login: knobs.5,
        };
        let dataset = Scenario::tiny().with_seed(seed).with_degrade(spec).generate();
        let st = &dataset.degrade;
        prop_assert_eq!(
            st.snapshots_kept() + st.snapshots_dropped(),
            st.snapshots_generated
        );
        prop_assert_eq!(st.snapshots_kept(), dataset.archive.n_snapshots() as u64);
        prop_assert_eq!(
            st.tickets_generated + st.tickets_duplicated,
            dataset.tickets.len() as u64
        );

        let full = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Full);
        let delta = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Delta);
        prop_assert_eq!(&full.device_changes, &delta.device_changes);
        let full_json = serde_json::to_string(&full.table).expect("serializes");
        let delta_json = serde_json::to_string(&delta.table).expect("serializes");
        prop_assert_eq!(full_json, delta_json);
    }
}
