//! Reproduction-harness smoke test: every table/figure regenerator runs and
//! yields structurally sane output on the cached tiny fixture.

use mpa_bench::{experiments, fixtures};

#[test]
fn every_experiment_regenerates() {
    let fx = fixtures::tiny();
    for id in experiments::ALL_EXPERIMENTS {
        let out = experiments::run(id, fx).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(out.lines().count() >= 3, "{id} output too small:\n{out}");
    }
}

#[test]
fn survey_figure_matches_published_counts() {
    let out = experiments::run("fig2", fixtures::tiny()).unwrap();
    // Spot-check the published histogram: change events 1/4/12/32/2.
    assert!(out.contains("32"), "{out}");
    assert!(out.contains("No. of change events"));
    // And the two headline opinions.
    assert!(out.lines().any(|l| l.contains("ACL") && l.contains("Low")), "{out}");
    assert!(out.lines().any(|l| l.contains("mbox") && l.contains("High")), "{out}");
}

#[test]
fn table7_reports_ground_truth_column() {
    let out = experiments::run("table7", fixtures::tiny()).unwrap();
    assert!(out.contains("ground truth"), "{out}");
    assert!(out.contains("causal") || out.contains("proxy"), "{out}");
}

#[test]
fn fig9_shares_sum_to_100_percent() {
    let out = experiments::run("fig9", fixtures::tiny()).unwrap();
    let mut shares: Vec<f64> = Vec::new();
    for line in out.lines() {
        if let Some(pct) = line.split_whitespace().last() {
            if let Some(stripped) = pct.strip_suffix('%') {
                if let Ok(v) = stripped.parse::<f64>() {
                    shares.push(v);
                }
            }
        }
    }
    // Two distributions (2-class + 5-class): shares come in groups summing
    // to ~100 each; total ≈ 200.
    let total: f64 = shares.iter().sum();
    assert!((total - 200.0).abs() < 1.0, "shares sum to {total}: {out}");
}

#[test]
fn fig10_trees_split_on_catalog_metrics() {
    let out = experiments::run("fig10", fixtures::tiny()).unwrap();
    assert!(out.contains("healthy"), "{out}");
    assert!(
        out.contains("No. of") || out.contains("Frac.") || out.contains("complexity"),
        "tree should name real metrics: {out}"
    );
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(experiments::run("table99", fixtures::tiny()).is_none());
}
