//! Golden-file regression tests for the *degraded* pipeline: a 2-network
//! corpus generated with every degradation knob active (the
//! `Scenario::degraded_demo()` preset) is inferred at 1, 2 and 8 worker
//! threads, and both the case table and the scenario coverage report are
//! byte-compared against committed fixtures. This pins three contracts at
//! once:
//!
//! - degradation is seeded and deterministic (same corpus every run),
//! - inference on messy corpora is thread-invariant and mode-invariant
//!   (delta ≡ full, byte-for-byte, at every thread count),
//! - the coverage scan itself is stable (the CI robustness gate diffs it).
//!
//! Regenerate intentionally with:
//!
//! ```text
//! MPA_GOLDEN_WRITE=1 cargo test --test golden_degraded
//! ```
//!
//! One test function: the worker-thread count is process-global, so the
//! thread sweep must not race a concurrently running test in this binary.

use mpa::analytics::exec;
use mpa::metrics::DELTA_DEFAULT_MINUTES;
use mpa::prelude::*;
use mpa::synth::CoverageReport;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check_or_write(name: &str, rendered: &str, write: bool) {
    let path = golden_dir().join(name);
    if write {
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        committed, rendered,
        "{name} drifted from the committed fixture; if the change is \
         intentional, regenerate with MPA_GOLDEN_WRITE=1"
    );
}

#[test]
fn degraded_demo_outputs_match_goldens_at_1_2_and_8_threads() {
    let write = std::env::var("MPA_GOLDEN_WRITE").is_ok_and(|v| v == "1");
    if write {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }
    let saved = exec::threads();

    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);
        let dataset = Scenario::degraded_demo().generate();

        // The degradation accounting must balance exactly on every run:
        // nothing generated goes unaccounted, nothing kept is phantom.
        let st = &dataset.degrade;
        assert!(st.snapshots_generated > 0, "degraded demo generated no snapshots");
        assert_eq!(st.snapshots_kept() + st.snapshots_dropped(), st.snapshots_generated);
        assert_eq!(st.snapshots_kept(), dataset.archive.n_snapshots() as u64);
        assert_eq!(st.tickets_generated + st.tickets_duplicated, dataset.tickets.len() as u64);
        assert!(st.snapshots_dropped() > 0, "heavy degradation dropped nothing");

        // Both engines must survive the messy corpus and agree byte-for-byte.
        let full = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Full);
        let delta = infer_with_mode(&dataset, DELTA_DEFAULT_MINUTES, InferMode::Delta);
        assert_eq!(
            full.device_changes, delta.device_changes,
            "degraded change records diverged at {threads} threads"
        );
        let table_json = serde_json::to_string(&delta.table).expect("serializes");
        let full_json = serde_json::to_string(&full.table).expect("serializes");
        assert_eq!(
            full_json, table_json,
            "degraded case tables diverged between modes at {threads} threads"
        );
        match &reference {
            None => reference = Some(table_json.clone()),
            Some(r0) => assert_eq!(
                r0, &table_json,
                "degraded case table diverged at {threads} threads"
            ),
        }

        let coverage = CoverageReport::scan(&dataset);
        let coverage_json = serde_json::to_string(&coverage).expect("serializes");

        // Compare (or rewrite) the committed fixtures once, on the 1-thread
        // pass; later passes are pinned to it through `reference`.
        if threads == 1 {
            check_or_write("case_table_degraded.json", &table_json, write);
            check_or_write("coverage_report_degraded.json", &coverage_json, write);
        } else {
            // The coverage scan must be thread-invariant too — it feeds a
            // CI gate that runs at whatever width the runner has.
            let one_thread = std::fs::read_to_string(golden_dir().join("coverage_report_degraded.json"))
                .expect("coverage fixture written on the 1-thread pass");
            assert_eq!(one_thread, coverage_json, "coverage drifted at {threads} threads");
        }
    }
    exec::set_threads(saved);
}
