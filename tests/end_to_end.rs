//! End-to-end integration: dataset → inference → dependence → prediction,
//! on the cached small fixture (≈48 networks × 5 months).

use mpa::prelude::*;
use mpa_bench::fixtures;

#[test]
fn case_table_covers_logged_months_only() {
    let fx = fixtures::small();
    let table = fx.table();
    assert_eq!(table.n_cases(), fx.dataset.coverage.len());
    assert!(table.n_cases() > 150, "enough cases for downstream stats");
    for case in table.cases() {
        assert!(fx.dataset.is_logged(case.network, case.month));
    }
}

#[test]
fn mi_ranking_puts_activity_and_size_on_top() {
    let fx = fixtures::small();
    let ranking = mi_ranking(fx.table(), 20);
    assert_eq!(ranking.len(), 28);
    let rank = |m: Metric| ranking.iter().position(|e| e.metric == m).unwrap();
    // The size/activity family must dominate the ranking, as in Table 3.
    let top: Vec<usize> = [
        Metric::Devices,
        Metric::ChangeEvents,
        Metric::DevicesChanged,
        Metric::ConfigChanges,
    ]
    .iter()
    .map(|&m| rank(m))
    .collect();
    assert!(
        top.iter().filter(|&&r| r < 6).count() >= 3,
        "size/activity metrics should dominate the top ranks: {top:?}"
    );
    // Pure-noise metrics (no effect, no coupling to drivers) rank low.
    assert!(rank(Metric::Workloads) > 14, "workloads rank {}", rank(Metric::Workloads));
}

#[test]
fn cmi_finds_coupled_design_pairs() {
    let fx = fixtures::small();
    let cmi = cmi_ranking(fx.table());
    // Strongly coupled by construction: devices changed vs config changes,
    // models vs vendors, hardware vs firmware entropy, ... at least one
    // mechanically-coupled pair must appear in the top 10 (Table 4's
    // "natural connections between many design decisions").
    let coupled = |a: Metric, b: Metric| {
        cmi.iter().take(10).any(|e| {
            (e.a == a && e.b == b) || (e.a == b && e.b == a)
        })
    };
    assert!(
        coupled(Metric::ConfigChanges, Metric::DevicesChanged)
            || coupled(Metric::Models, Metric::Vendors)
            || coupled(Metric::HardwareEntropy, Metric::FirmwareEntropy)
            || coupled(Metric::ConfigChanges, Metric::ChangeEvents)
            || coupled(Metric::Devices, Metric::DevicesChanged),
        "no mechanically-coupled pair in the CMI top 10: {:?}",
        cmi.iter().take(10).map(|e| (e.a.name(), e.b.name())).collect::<Vec<_>>()
    );
}

#[test]
fn decision_tree_beats_majority_by_a_wide_margin() {
    let fx = fixtures::small();
    let table = fx.table();
    let dt = cross_validation(table, HealthClasses::Two, ModelKind::Dt, 7);
    let majority = cross_validation(table, HealthClasses::Two, ModelKind::Majority, 7);
    // The margin threshold respects the base rate: on the small fixture the
    // healthy class can legitimately sit anywhere in the calibrated
    // 0.5–0.85 band, and a high base rate leaves the tree less headroom.
    assert!(
        dt.accuracy() > majority.accuracy() + 0.05,
        "DT {:.3} vs majority {:.3}",
        dt.accuracy(),
        majority.accuracy()
    );
    assert!(dt.accuracy() > 0.75, "2-class DT accuracy {:.3}", dt.accuracy());
}

#[test]
fn five_class_enhancements_help_the_minority_classes() {
    // Needs the medium fixture: minority-class recall estimates are too
    // noisy on ~200 cases to compare model variants.
    let fx = fixtures::medium();
    let table = fx.table();
    let plain = cross_validation(table, HealthClasses::Five, ModelKind::Dt, 7);
    let full = cross_validation(table, HealthClasses::Five, ModelKind::DtAbOs, 7);
    let mid = |e: &mpa::learn::Evaluation| (e.recall(1) + e.recall(2) + e.recall(3)) / 3.0;
    assert!(
        mid(&full) + 0.02 >= mid(&plain),
        "oversampling+boosting should not hurt intermediate recall: {:.3} vs {:.3}",
        mid(&full),
        mid(&plain)
    );
}

#[test]
fn online_prediction_works_and_longer_history_is_reasonable() {
    // Needs the medium fixture: the online trainer skips months whose
    // training slice is under 50 cases, which a 48-network org hits at M=1.
    let fx = fixtures::medium();
    let table = fx.table();
    let (acc1, ev1) = online_accuracy(table, HealthClasses::Two, ModelKind::Dt, 1);
    let (acc3, ev3) = online_accuracy(table, HealthClasses::Two, ModelKind::Dt, 3);
    assert!(ev1.n > ev3.n, "more testable months with shorter history");
    assert!(acc1 > 0.6 && acc3 > 0.6, "online accuracies: {acc1:.3} / {acc3:.3}");
}

#[test]
fn survey_comparison_reproduces_the_headline_contradictions() {
    let fx = fixtures::small();
    let responses = mpa::synth::survey::generate_survey(42);
    let cfg = CausalConfig::default();
    let mi = mi_ranking(fx.table(), 20);
    let rows = compare_survey(&responses, &mi, &[], &cfg);
    assert_eq!(rows.len(), 11);
    // The survey side is fixed: ACL majority low, mbox majority high.
    use mpa::synth::survey::{ImpactOpinion, SurveyPractice};
    let acl = rows.iter().find(|r| r.practice == SurveyPractice::FracAclChange).unwrap();
    assert_eq!(acl.majority, ImpactOpinion::Low);
    let mbox = rows.iter().find(|r| r.practice == SurveyPractice::FracMboxChange).unwrap();
    assert_eq!(mbox.majority, ImpactOpinion::High);
}
