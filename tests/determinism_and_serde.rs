//! Determinism and serialization integration tests: identical seeds must
//! yield byte-identical analytics, and the dataset artifacts must survive a
//! serde round trip (the CLI's export/import path).

use mpa::prelude::*;

#[test]
fn same_seed_same_case_table() {
    let a = infer_case_table(&Scenario::tiny().generate());
    let b = infer_case_table(&Scenario::tiny().generate());
    assert_eq!(a, b);
}

#[test]
fn different_seed_different_case_table() {
    let a = infer_case_table(&Scenario::tiny().generate());
    let b = infer_case_table(&Scenario::tiny().with_seed(4242).generate());
    assert_ne!(a, b);
}

#[test]
fn analytics_are_deterministic() {
    let ds = Scenario::tiny().generate();
    let table = infer_case_table(&ds);
    let mi_a = mi_ranking(&table, 10);
    let mi_b = mi_ranking(&table, 10);
    assert_eq!(mi_a, mi_b);
    let cfg = CausalConfig::default();
    let ca = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
    let cb = analyze_treatment(&table, Metric::ChangeEvents, &cfg);
    assert_eq!(ca, cb);
    let ev_a = cross_validation(&table, HealthClasses::Two, ModelKind::DtAbOs, 7);
    let ev_b = cross_validation(&table, HealthClasses::Two, ModelKind::DtAbOs, 7);
    assert_eq!(ev_a, ev_b);
}

#[test]
fn case_table_round_trips_through_json() {
    let ds = Scenario::tiny().generate();
    let table = infer_case_table(&ds);
    let json = serde_json::to_string(&table).expect("serialize");
    let back: CaseTable = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(table, back);
}

#[test]
fn dataset_summary_round_trips_through_json() {
    let ds = Scenario::tiny().generate();
    let summary = ds.summary();
    let json = serde_json::to_string(&summary).expect("serialize");
    let back: mpa::synth::DatasetSummary = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(summary, back);
}

#[test]
fn snapshots_round_trip_and_reparse() {
    let ds = Scenario::tiny().generate();
    let dev = ds.archive.devices().next().expect("some device");
    let snap = &ds.archive.device_history(dev)[0];
    let json = serde_json::to_string(snap).expect("serialize");
    let back: mpa::config::Snapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(snap, &back);
    // The text inside still parses with the right dialect.
    let network = ds.networks.iter().find(|n| n.device(dev).is_some()).expect("owner");
    let dialect = network.device(dev).unwrap().dialect();
    mpa::config::parse_config(&back.text, dialect).expect("snapshot text parses");
}

#[test]
fn causal_analysis_serializes() {
    let ds = Scenario::tiny().generate();
    let table = infer_case_table(&ds);
    let analysis = analyze_treatment(&table, Metric::Devices, &CausalConfig::default());
    let json = serde_json::to_string(&analysis).expect("serialize");
    let back: CausalAnalysis = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(analysis, back);
}
