//! The delta-native generator and the full-render oracle must be
//! interchangeable: byte-identical snapshot archives (serde bytes, not
//! just logical equality) and byte-identical downstream case tables, at
//! every worker-thread count and on arbitrarily degraded scenarios.
//! (A single thread-sweep function, because the thread count is
//! process-global and the test harness runs functions concurrently.)

use mpa::analytics::exec;
use mpa::metrics::DELTA_DEFAULT_MINUTES;
use mpa::prelude::*;
use mpa::synth::DegradeSpec;
use proptest::prelude::*;

#[test]
fn delta_and_full_generation_agree_at_1_2_and_8_threads() {
    let saved = exec::threads();
    let scenario = Scenario::tiny();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 8] {
        exec::set_threads(threads);
        let full = scenario.generate_with_mode(GenMode::Full);
        let delta = scenario.generate_with_mode(GenMode::Delta);
        let full_archive = serde_json::to_string(&full.archive).expect("serializes");
        let delta_archive = serde_json::to_string(&delta.archive).expect("serializes");
        assert_eq!(
            full_archive, delta_archive,
            "archives must serialize byte-identically at {threads} threads"
        );
        assert_eq!(full.summary(), delta.summary(), "summaries diverged at {threads} threads");
        // The equivalence must survive inference: identical case tables.
        let full_table =
            serde_json::to_string(&infer(&full, DELTA_DEFAULT_MINUTES).table).expect("serializes");
        let delta_table =
            serde_json::to_string(&infer(&delta, DELTA_DEFAULT_MINUTES).table).expect("serializes");
        assert_eq!(full_table, delta_table, "case tables diverged at {threads} threads");
        // And both must match the other thread counts' output.
        match &reference {
            None => reference = Some(delta_archive),
            Some(r0) => assert_eq!(r0, &delta_archive, "archive diverged at {threads} threads"),
        }
    }
    exec::set_threads(saved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The equivalence must also hold on *degraded* corpora — degradation
    // runs downstream of generation, so any divergence in the emitted
    // archive would cascade into different drop/truncate decisions. Over
    // arbitrary seeds and knob settings the two engines must emit
    // byte-identical archives, identical degradation accounting and
    // byte-identical case tables.
    #[test]
    fn delta_and_full_generation_agree_on_degraded_corpora(
        seed in 0u64..10_000,
        knobs in (
            0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64,
            0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64,
        ),
    ) {
        let spec = DegradeSpec {
            miss_window: knobs.0,
            truncate: knobs.1,
            reorder: knobs.2,
            dup_ticket: knobs.3,
            corrupt_ticket: knobs.4,
            ambiguous_login: knobs.5,
        };
        let scenario = Scenario::tiny().with_seed(seed).with_degrade(spec);
        let full = scenario.generate_with_mode(GenMode::Full);
        let delta = scenario.generate_with_mode(GenMode::Delta);
        prop_assert_eq!(
            serde_json::to_string(&full.archive).expect("serializes"),
            serde_json::to_string(&delta.archive).expect("serializes")
        );
        prop_assert_eq!(&full.degrade, &delta.degrade);
        prop_assert_eq!(full.tickets.len(), delta.tickets.len());
        let full_table = serde_json::to_string(
            &infer(&full, DELTA_DEFAULT_MINUTES).table
        ).expect("serializes");
        let delta_table = serde_json::to_string(
            &infer(&delta, DELTA_DEFAULT_MINUTES).table
        ).expect("serializes");
        prop_assert_eq!(full_table, delta_table);
    }
}
