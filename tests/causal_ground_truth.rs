//! Causal-recovery validation: the unique advantage of a synthetic
//! substrate is that the QED's verdicts can be checked against the
//! generator's structural causal model (DESIGN.md §3) — something the paper
//! could never do with production data.
//!
//! The QED needs the paper's scale to have power (its own §5.2.6: "The only
//! way to address this issue is to obtain (more diverse) data from more
//! networks"), so these tests run on the paper-scale fixture. Individual
//! 1:2 p-values are noisy, so assertions target robust aggregates:
//! directions, the causal-vs-non-causal separation, and the low-vs-upper-bin
//! contrast.

use mpa::prelude::*;
use mpa_bench::fixtures;
use std::sync::OnceLock;

/// Practices with a direct effect in the ground-truth health model.
const TRUE_CAUSAL: [Metric; 8] = [
    Metric::Devices,
    Metric::ChangeEvents,
    Metric::ChangeTypes,
    Metric::Vlans,
    Metric::Models,
    Metric::Roles,
    Metric::AvgDevicesPerEvent,
    Metric::FracAclEvents,
];

/// The paper's two confounded-but-not-causal practices.
const TRUE_NON_CAUSAL: [Metric; 2] = [Metric::IntraComplexity, Metric::FracIfaceEvents];

/// One QED per metric of interest, computed once per test binary.
fn analyses() -> &'static Vec<(Metric, CausalAnalysis)> {
    static CELL: OnceLock<Vec<(Metric, CausalAnalysis)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let fx = fixtures::paper();
        let cfg = CausalConfig::default();
        TRUE_CAUSAL
            .iter()
            .chain(TRUE_NON_CAUSAL.iter())
            .map(|&m| (m, analyze_treatment(fx.table(), m, &cfg)))
            .collect()
    })
}

fn low(m: Metric) -> Option<&'static mpa::analytics::ComparisonResult> {
    analyses().iter().find(|(mm, _)| *mm == m).and_then(|(_, a)| a.low_bin_comparison())
}

#[test]
fn causal_practices_push_health_in_the_right_direction() {
    let mut positive = 0;
    let mut tested = 0;
    for metric in TRUE_CAUSAL {
        let Some(c) = low(metric) else { continue };
        let Some(sign) = &c.sign else { continue };
        if c.n_pairs < 50 {
            continue;
        }
        tested += 1;
        if sign.direction() >= 0 {
            positive += 1;
        }
    }
    assert!(tested >= 6, "only {tested} causal practices were testable");
    assert!(
        positive * 5 >= tested * 3,
        "most testable causal practices must push tickets up: {positive}/{tested}"
    );
}

#[test]
fn causal_practices_are_detected_in_aggregate() {
    let cfg = CausalConfig::default();
    let mut strict = 0; // balance + p < 0.001
    let mut evidential = 0; // p < 0.05, balance aside
    for metric in TRUE_CAUSAL {
        let Some(c) = low(metric) else { continue };
        if c.causal(&cfg) {
            strict += 1;
        }
        if c.p_value().is_some_and(|p| p < 0.05) {
            evidential += 1;
        }
    }
    assert!(
        strict >= 1,
        "at least one causal practice must be certified end-to-end (balance + p < 0.001)"
    );
    assert!(
        evidential >= 3,
        "at least three causal practices must show p < 0.05 evidence, got {evidential}"
    );
}

#[test]
fn confounded_proxies_are_never_certified_causal() {
    let cfg = CausalConfig::default();
    for metric in TRUE_NON_CAUSAL {
        if let Some(c) = low(metric) {
            assert!(
                !c.causal(&cfg),
                "{} must not be certified causal (p = {:?}, imbalanced = {})",
                metric.name(),
                c.p_value(),
                c.n_imbalanced_covariates
            );
        }
    }
}

#[test]
fn confounded_proxies_still_rank_high_statistically() {
    // The paper's core argument: MI (statistics) and QED (causality)
    // disagree on these practices. They must carry real statistical signal
    // (they are proxies of causal drivers) while failing the causal gate.
    let fx = fixtures::paper();
    let mi = mi_ranking(fx.table(), 30);
    let rank = |m: Metric| mi.iter().position(|e| e.metric == m).unwrap() + 1;
    // Strong proxies of size/activity must rank in the top half.
    assert!(rank(Metric::DevicesChanged) <= 6, "devices-changed rank {}", rank(Metric::DevicesChanged));
    assert!(rank(Metric::ConfigChanges) <= 8, "config-changes rank {}", rank(Metric::ConfigChanges));
    // Yet neither has a direct effect — and the QED's evidence for the true
    // drivers (devices/events) must be at least as strong as for these
    // proxies (p-value comparison at 1:2).
    let p = |m: Metric| {
        let cfg = CausalConfig::default();
        let a = analyze_treatment(fixtures::paper().table(), m, &cfg);
        a.low_bin_comparison().and_then(|c| c.p_value()).unwrap_or(1.0)
    };
    let p_true = p(Metric::Devices).min(p(Metric::ChangeEvents));
    let p_proxy = p(Metric::DevicesChanged);
    assert!(
        p_true <= p_proxy * 10.0,
        "true drivers should not look dramatically less causal than their proxy: {p_true} vs {p_proxy}"
    );
}

#[test]
fn upper_bins_are_weaker_than_the_low_bins() {
    // The paper's Table 8 story: heavy-tailed metrics leave the upper bins
    // thin or imbalanced, and effects saturate — so upper-bin comparisons
    // rarely certify causality.
    let cfg = CausalConfig::default();
    let mut upper_causal = 0;
    let mut upper_total = 0;
    for (_, analysis) in analyses() {
        for c in &analysis.comparisons {
            if c.point != (1, 2) {
                upper_total += 1;
                if c.causal(&cfg) {
                    upper_causal += 1;
                }
            }
        }
    }
    assert!(upper_total >= 20);
    assert!(
        (upper_causal as f64) < upper_total as f64 * 0.35,
        "upper-bin comparisons should mostly fail to certify: {upper_causal}/{upper_total}"
    );
}

#[test]
fn matching_produces_substantial_balanced_pairs_for_operational_treatments() {
    let c = low(Metric::FracAclEvents).expect("1:2 comparison exists");
    assert!(c.n_pairs > 300, "pairs {}", c.n_pairs);
    assert!(c.score_balance.is_some_and(|b| b.is_balanced()), "propensity scores must balance");
    assert!(c.n_untreated_matched <= c.n_pairs, "with-replacement reuse");
}
