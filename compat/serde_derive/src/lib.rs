//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! data shapes this workspace actually uses, without depending on
//! `syn`/`quote` (unavailable offline). The derives target the vendored
//! `serde` shim's value-tree model: `Serialize::to_value` /
//! `Deserialize::from_value`.
//!
//! Supported shapes:
//! - structs with named fields (`#[serde(skip)]` per field);
//! - tuple structs (1 field ⇒ newtype, serialized as the inner value;
//!   n ≥ 2 ⇒ array) and `#[serde(transparent)]`;
//! - unit structs;
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde), including recursive ones.
//!
//! Generic types are intentionally unsupported — the workspace has none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("derive(Serialize): generated code parses")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("derive(Deserialize): generated code parses")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

struct NamedField {
    name: String,
    skip: bool,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<NamedField>),
}

enum Body {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

/// True if the attribute token stream is `serde(...)` containing the word.
fn serde_attr_contains(attr: &[TokenTree], word: &str) -> bool {
    let mut it = attr.iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

/// Consume leading `#[...]` attributes starting at `*i`; return their token
/// streams.
fn take_attrs(trees: &[TokenTree], i: &mut usize) -> Vec<Vec<TokenTree>> {
    let mut attrs = Vec::new();
    while matches!(trees.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match trees.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                attrs.push(g.stream().into_iter().collect());
                *i += 2;
            }
            _ => panic!("derive: malformed attribute"),
        }
    }
    attrs
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` visibility tokens.
fn skip_visibility(trees: &[TokenTree], i: &mut usize) {
    if matches!(trees.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(trees.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(trees: &[TokenTree], i: &mut usize, what: &str) -> String {
    match trees.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("derive: expected {what}, found {other:?}"),
    }
}

/// Skip tokens until a top-level `,` (angle-bracket aware, for types like
/// `BTreeMap<K, Vec<V>>`). Leaves `*i` past the comma (or at end).
fn skip_past_comma(trees: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = trees.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group_stream: TokenStream) -> Vec<NamedField> {
    let trees: Vec<TokenTree> = group_stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let attrs = take_attrs(&trees, &mut i);
        skip_visibility(&trees, &mut i);
        if i >= trees.len() {
            break;
        }
        let name = expect_ident(&trees, &mut i, "field name");
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field {name}, found {other:?}"),
        }
        skip_past_comma(&trees, &mut i);
        let skip = attrs.iter().any(|a| serde_attr_contains(a, "skip"));
        fields.push(NamedField { name, skip });
    }
    fields
}

/// Count top-level comma-separated entries of a tuple-struct/-variant body.
fn count_tuple_fields(group_stream: TokenStream) -> usize {
    let trees: Vec<TokenTree> = group_stream.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < trees.len() {
        let _ = take_attrs(&trees, &mut i);
        skip_visibility(&trees, &mut i);
        if i >= trees.len() {
            break; // trailing comma
        }
        skip_past_comma(&trees, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(group_stream: TokenStream) -> Vec<Variant> {
    let trees: Vec<TokenTree> = group_stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let _attrs = take_attrs(&trees, &mut i);
        if i >= trees.len() {
            break;
        }
        let name = expect_ident(&trees, &mut i, "variant name");
        let variant = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Variant::Tuple(name, n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Variant::Struct(name, fields)
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        // Skip an optional discriminant and the separating comma.
        skip_past_comma(&trees, &mut i);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = take_attrs(&trees, &mut i);
    let transparent = container_attrs.iter().any(|a| serde_attr_contains(a, "transparent"));
    skip_visibility(&trees, &mut i);
    let kw = expect_ident(&trees, &mut i, "`struct` or `enum`");
    let name = expect_ident(&trees, &mut i, "item name");
    if matches!(trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive: generic type {name} is not supported by the vendored serde_derive");
    }
    let body = match kw.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("derive: expected struct or enum, found `{other}`"),
    };
    Item { name, transparent, body }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent {
                let only: Vec<&NamedField> = fields.iter().filter(|f| !f.skip).collect();
                assert!(only.len() == 1, "serde(transparent) needs exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", only[0].name)
            } else {
                let mut s = String::from(
                    "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "fields.push((String::from({:?}), ::serde::Serialize::to_value(&self.{})));\n",
                        f.name, f.name
                    ));
                }
                s.push_str("::serde::Value::Object(fields)");
                s
            }
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from({vn:?})),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::variant({vn:?}, ::serde::Serialize::to_value(f0)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant({vn:?}, ::serde::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "fields.push((String::from({:?}), ::serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::variant({vn:?}, ::serde::Value::Object(fields))\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            if item.transparent {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{}: ::serde::Deserialize::from_value(v)?,\n",
                            f.name
                        ));
                    }
                }
                format!("::std::result::Result::Ok({name} {{\n{inits}}})")
            } else {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{}: ::serde::field(obj, {:?}, {name:?})?,\n",
                            f.name, f.name
                        ));
                    }
                }
                format!(
                    "let obj = ::serde::expect_object(v, {name:?})?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = ::serde::expect_array(v, {n}, {name:?})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, 1) => tagged_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let items = ::serde::expect_array(inner, {n}, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            gets.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{}: ::serde::field(obj, {:?}, {name:?})?,\n",
                                    f.name, f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let obj = ::serde::expect_object(inner, {name:?})?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n",
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(s) = v {{\n\
                 return match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other, {name:?})),\n\
                 }};\n\
                 }}\n\
                 let (tag, inner) = ::serde::variant_parts(v, {name:?})?;\n\
                 match tag {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other, {name:?})),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
