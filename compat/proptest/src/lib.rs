//! Offline stand-in for [`proptest`](https://docs.rs/proptest/1).
//!
//! Same spelling as upstream for the subset this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy`, `prop_map`,
//! `Just`, `any::<bool>()`, `proptest::collection::vec`, range strategies,
//! and `ProptestConfig::with_cases` — but a simpler model:
//!
//! - inputs are drawn from a deterministic RNG seeded from the test name
//!   and case index, so failures reproduce without a persistence file;
//! - there is no shrinking: a failing case reports the assertion message
//!   from `prop_assert!` and the case number.

use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the opt-level-2 test suite fast
        // while still exercising plenty of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (xoshiro-style mix over a SplitMix64 seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 2],
}

impl TestRng {
    /// Seed from the test name and case index (FNV-1a over the name).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng { s: [split_mix(&mut sm), split_mix(&mut sm)] }
    }

    /// Next 64 random bits (xoroshiro128++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, mut s1] = self.s;
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s[0] = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s[1] = s1.rotate_left(28);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function (like upstream
    /// `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span.saturating_add(1).max(1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $ix:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy (only what the workspace
/// needs).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, like upstream `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A boxed generator closure, one alternative of a [`OneOf`].
pub type Generator<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed generator closures; built by
/// [`prop_oneof!`].
pub struct OneOf<T> {
    /// One generator per alternative.
    pub alternatives: Vec<Generator<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        let ix = rng.below(self.alternatives.len() as u64) as usize;
        (self.alternatives[ix])(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element` with length in `len`
    /// (half-open, like upstream's `0..12`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a property; failure reports the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf {
            alternatives: vec![
                $({
                    let s = $strategy;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                        as Box<dyn Fn(&mut $crate::TestRng) -> _>
                }),+
            ],
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $config;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let (a, b) = (1u16..40, -1e3f64..1e3).generate(&mut rng);
            assert!((1..40).contains(&a));
            assert!((-1e3..1e3).contains(&b));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = collection::vec(0u8..5, 2..7);
        let mut rng = TestRng::for_case("lens", 3);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("oneof", 1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[usize::from(s.generate(&mut rng)) - 1] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(x in 0u32..10, flips in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(flips.len() < 4);
        }
    }
}
