//! Offline stand-in for [`criterion`](https://docs.rs/criterion/0.8).
//!
//! Runs each benchmark for a fixed number of samples, reports min / median /
//! mean wall-clock per iteration, and honours `--bench` harness invocation.
//! No statistical analysis, plots, or baselines — numbers print to stdout,
//! one line per benchmark:
//!
//! ```text
//! analytics/mi_ranking    time: [min 1.21 ms, median 1.25 ms, mean 1.27 ms]  (20 samples)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point; create via `Criterion::default()`
/// (normally done by [`criterion_main!`]).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of samples per benchmark (overridable per group).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let n = self.sample_size;
        run_bench(&id.into(), n, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&format!("{}/{}", self.name, id.into()), n, f);
    }

    /// Finish the group (drop also finishes; provided for API parity).
    pub fn finish(self) {}
}

/// Batch size hint for [`Bencher::iter_batched`]; accepted for API parity,
/// batching is always per-iteration here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    /// Measured wall-clock for the sample, excluding setup.
    elapsed: Duration,
    /// Iterations the routine ran in this sample.
    iters: u64,
}

impl Bencher {
    /// Time `routine` (one iteration per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        let out = routine();
        self.elapsed += t.elapsed();
        self.iters += 1;
        black_box(out);
    }

    /// Time `routine` on a fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        let out = routine(input);
        self.elapsed += t.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up sample (not recorded): touches caches, lazy statics, fixtures.
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<40} (no iterations recorded)");
        return;
    }

    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        per_iter.push(b.elapsed / u32::try_from(b.iters.max(1)).unwrap_or(u32::MAX));
    }
    per_iter.sort();
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / u32::try_from(per_iter.len()).unwrap();
    println!(
        "{id:<40} time: [min {}, median {}, mean {}]  ({samples} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into one group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group runner generated by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, honouring the libtest-style
/// `--bench` / `--test` flags cargo passes to bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes bench binaries with `--test`;
            // in that mode just confirm the harness links and exit.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut count = 0u32;
        g.bench_function("iter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.bench_function(format!("batched/{}", 1), |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count >= 3, "warmup + samples each ran the routine once");
    }
}
