//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json/1.0).
//!
//! Provides [`to_string`] and [`from_str`] over the vendored `serde`
//! crate's [`Value`] tree. Floats are rendered with Rust's shortest
//! roundtrip formatting, so `parse(render(x)) == x` for every finite `f64`
//! (the upstream `float_roundtrip` feature is therefore always on).

pub use serde::Error;
use serde::{Deserialize, Number, Serialize, Value};

/// Serialize a value to compact JSON text.
///
/// # Errors
/// Never fails for the value model in this workspace; the `Result` exists
/// for call-site compatibility with upstream serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
///
/// # Errors
/// Fails on malformed JSON or when the parsed tree does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::I64(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::U64(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::F64(f)) => write_f64(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    debug_assert!(f.is_finite(), "serde shim maps non-finite floats to null");
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        // "{}" prints integral floats without a dot; keep the float type
        // distinction on the wire (also preserves -0.0 through roundtrips).
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the maximal run of unescaped bytes in one shot. UTF-8
            // continuation bytes are >= 0x80, so they can never alias the
            // quote or backslash we scan for, and the run is validated as
            // one slice rather than per character.
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                out.push_str(s);
            }
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => unreachable!("run scan stops only on '\"' or '\\\\'"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v: Vec<(String, Option<f64>)> =
            vec![("a\"b\\c\n".to_string(), Some(0.1)), ("π∈ℝ".to_string(), None)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Option<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-308, 12345.6789e12, -0.0, 271.828_182_845] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }
}
