//! Offline stand-in for [`serde`](https://docs.rs/serde/1.0).
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small self-describing serialization framework with the same *spelling*
//! as serde — `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` work unchanged — but a much simpler
//! contract: types convert to and from an owned [`Value`] tree, and
//! `serde_json` renders that tree as JSON text.
//!
//! Differences from upstream that matter to callers:
//! - maps serialize as arrays of `[key, value]` pairs (works for any key
//!   type; this workspace never hand-inspects that JSON);
//! - non-finite floats serialize as `null` (upstream errors);
//! - enums are externally tagged exactly like upstream.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

// ---------------------------------------------------------------------------
// Value model
// ---------------------------------------------------------------------------

/// A JSON-shaped value tree: the interchange format between typed data and
/// text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping integer/float distinction for lossless roundtrips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// Borrow as object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short tag naming the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, found Y" while deserializing `ctx`.
    pub fn expected(what: &str, found: &Value, ctx: &str) -> Self {
        Error(format!("{ctx}: expected {what}, found {}", found.kind()))
    }

    /// Unknown externally-tagged enum variant.
    pub fn unknown_variant(tag: &str, ctx: &str) -> Self {
        Error(format!("{ctx}: unknown variant {tag:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by generated code; also handy manually)
// ---------------------------------------------------------------------------

/// Externally-tagged enum payload: `{"Variant": inner}`.
pub fn variant(tag: &str, inner: Value) -> Value {
    Value::Object(vec![(tag.to_string(), inner)])
}

/// Split `{"Variant": inner}` into `("Variant", &inner)`.
pub fn variant_parts<'v>(v: &'v Value, ctx: &str) -> Result<(&'v str, &'v Value), Error> {
    match v.as_object() {
        Some([(tag, inner)]) => Ok((tag.as_str(), inner)),
        _ => Err(Error::expected("single-key variant object", v, ctx)),
    }
}

/// Borrow the object pairs or fail with context.
pub fn expect_object<'v>(v: &'v Value, ctx: &str) -> Result<&'v [(String, Value)], Error> {
    v.as_object().ok_or_else(|| Error::expected("object", v, ctx))
}

/// Borrow an array of exactly `n` items or fail with context.
pub fn expect_array<'v>(v: &'v Value, n: usize, ctx: &str) -> Result<&'v [Value], Error> {
    let items = v.as_array().ok_or_else(|| Error::expected("array", v, ctx))?;
    if items.len() != n {
        return Err(Error::custom(format!("{ctx}: expected {n} elements, found {}", items.len())));
    }
    Ok(items)
}

/// Look up and deserialize a named struct field.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    ctx: &str,
) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("{ctx}: missing field {name:?}")))?;
    T::from_value(v).map_err(|e| Error::custom(format!("{ctx}.{name}: {e}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v, "bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(irrefutable_let_patterns)]
                if let Ok(i) = i64::try_from(*self) {
                    Value::Num(Number::I64(i))
                } else {
                    Value::Num(Number::U64(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Num(Number::I64(i)) => <$t>::try_from(*i).ok(),
                    Value::Num(Number::U64(u)) => <$t>::try_from(*u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($t), v, stringify!($t)))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(Number::F64(*self))
        } else {
            Value::Null // JSON has no NaN/Inf; mirrors JS semantics
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(Number::F64(f)) => Ok(*f),
            Value::Num(Number::I64(i)) => Ok(*i as f64),
            Value::Num(Number::U64(u)) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", v, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v, "char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = expect_array(v, 2, "tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = expect_array(v, 3, "tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

// Maps serialize as arrays of [key, value] pairs: key types here include
// newtype ids, so a JSON object (string keys only) cannot represent them.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|(k, v)| (k, v).to_value()).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v, "BTreeMap"))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output requires a stable order; sort by rendered key.
        let mut pairs: Vec<Value> = self.iter().map(|(k, v)| (k, v).to_value()).collect();
        pairs.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(pairs)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v, "HashMap"))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v, "BTreeSet"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<(u8, bool)> = vec![(1, true), (2, false)];
        assert_eq!(Vec::<(u8, bool)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn maps_roundtrip_as_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert(3u32, vec![1.0f64, 2.0]);
        m.insert(1u32, vec![]);
        let v = m.to_value();
        assert!(matches!(v, Value::Array(_)));
        assert_eq!(BTreeMap::<u32, Vec<f64>>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn out_of_range_int_fails() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}
