//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.9) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rand 0.9 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`]
//! and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256\*\* seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors. It is *not* the same stream
//! as upstream rand's ChaCha12-based `StdRng`; like upstream, this crate
//! promises determinism for a given seed, not stream compatibility across
//! versions. All calibration expectations in this workspace were fitted
//! against this generator.

use std::ops::{Range, RangeInclusive};

/// Expand a 64-bit state with the SplitMix64 step function.
///
/// Exposed because the synth and learn crates use it to derive independent
/// per-network / per-tree seed streams from one master seed.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s. The only method an RNG has to provide.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`]. Mirrors the rand 0.9 `Rng` trait surface this workspace
/// uses.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f64` ∈ [0, 1), full-range integers, fair `bool`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed. Only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed, expanding it to the full state
    /// via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random bits → uniform in [0, 1), the conventional mapping.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit multiply.
/// (Bias is < 2⁻⁶⁴ per draw; determinism, not bias, is what the synth
/// pipeline depends on.)
#[inline]
fn mul_bound(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_bound(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_bound(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{split_mix_64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256\*\*.
    ///
    /// Fast, tiny state, passes BigCrush; seeded from a `u64` via
    /// SplitMix64 per the xoshiro reference implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(10u64..=14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all endpoints reachable");
        for _ in 0..1000 {
            let v = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let u = rng.random_range(0usize..=0);
            assert_eq!(u, 0);
            let w = rng.random_range(5i64..8);
            assert!((5..8).contains(&w));
        }
    }
}
