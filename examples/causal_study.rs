//! Causal deep-dive: the full quasi-experimental design for one practice.
//!
//! ```text
//! cargo run --release --example causal_study [metric-index]
//! ```
//!
//! Walks the four QED steps of paper §5.2 for a chosen treatment practice —
//! treatment binning, propensity matching, balance verification, sign test —
//! and prints every intermediate artifact, then checks the verdict against
//! the generator's ground truth (something the paper could never do with
//! production data).

use mpa::prelude::*;
use mpa::synth::HealthModel;

fn main() {
    let metric_ix: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0);

    let dataset = Scenario::medium().generate();
    let table = infer_case_table(&dataset);
    println!("case table: {} cases", table.n_cases());

    // Pick the treatment: by default the strongest-MI practice.
    let ranking = mi_ranking(&table, 30);
    let treatment = ranking[metric_ix.min(ranking.len() - 1)].metric;
    println!("treatment practice: {} (MI rank {})\n", treatment.name(), metric_ix + 1);

    let cfg = CausalConfig::default();
    let analysis = analyze_treatment(&table, treatment, &cfg);

    println!("{:<8} {:>9} {:>8} {:>7} {:>10} {:>12} {:>8}", "point", "untreated", "treated", "pairs", "reused", "p-value", "verdict");
    for c in &analysis.comparisons {
        let p = c.p_value().map_or("-".to_string(), |p| format!("{p:.2e}"));
        let verdict = if c.n_pairs == 0 {
            "thin"
        } else if !c.balanced(&cfg) {
            "imbal."
        } else if c.causal(&cfg) {
            "CAUSAL"
        } else {
            "-"
        };
        println!(
            "{:<8} {:>9} {:>8} {:>7} {:>10} {:>12} {:>8}",
            format!("{}:{}", c.point.0, c.point.1),
            c.n_untreated,
            c.n_treated,
            c.n_pairs,
            c.n_untreated_matched,
            p,
            verdict,
        );
        if !c.imbalanced.is_empty() {
            let worst: Vec<String> = c
                .imbalanced
                .iter()
                .take(3)
                .map(|(m, d)| format!("{} ({d:+.2})", m.name()))
                .collect();
            println!("         imbalanced confounders: {}", worst.join(", "));
        }
        if let Some(sign) = &c.sign {
            println!(
                "         outcomes: {} fewer / {} no-effect / {} more tickets",
                sign.n_negative, sign.n_zero, sign.n_positive
            );
        }
    }

    // Ground-truth check: is this practice actually in the health model?
    let truth = HealthModel::default();
    let truly_causal = match treatment {
        Metric::Devices => truth.c_devices > 0.0,
        Metric::ChangeEvents => truth.c_events > 0.0,
        Metric::ChangeTypes => truth.c_change_types > 0.0,
        Metric::Vlans => truth.c_vlans > 0.0,
        Metric::Models => truth.c_models > 0.0,
        Metric::Roles => truth.c_roles > 0.0,
        Metric::AvgDevicesPerEvent => truth.c_event_size > 0.0,
        Metric::FracAclEvents => truth.c_acl > 0.0,
        _ => false,
    };
    println!(
        "\nground truth: {} {} a direct cause of incident tickets in the generator",
        treatment.name(),
        if truly_causal { "IS" } else { "is NOT" }
    );
    println!("(practices like config-change counts or intra-device complexity are proxies:");
    println!(" they co-move with causal drivers but have no direct effect — the QED's job is");
    println!(" to tell these apart, which no purely-statistical ranking can.)");
}
