//! Quickstart: the full MPA loop on a small synthetic organization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates an organization, infers the case table from raw data sources,
//! ranks practices by mutual information with health, runs one causal
//! analysis, and trains a health predictor — the end-to-end workflow an
//! operator would run on their own data.

use mpa::prelude::*;

fn main() {
    // 1. Data. A real deployment would load inventory records, an NMS
    //    snapshot archive and a ticket dump; here we generate a synthetic
    //    organization with a known ground truth.
    let dataset = Scenario::small().generate();
    let summary = dataset.summary();
    println!(
        "organization: {} networks, {} devices, {} snapshots, {} tickets over {} months\n",
        summary.networks, summary.devices, summary.config_snapshots, summary.tickets, summary.months
    );

    // 2. Inference: 28 practice metrics + monthly health per network,
    //    computed only from the observable data sources.
    let table = infer_case_table(&dataset);
    println!("case table: {} (network, month) cases\n", table.n_cases());

    // 3. Statistical dependence (paper §5.1).
    let ranking = mi_ranking(&table, 20);
    println!("top 5 practices by MI with health:");
    for (i, entry) in ranking.iter().take(5).enumerate() {
        println!("  {}. {:<34} {:.3} bits", i + 1, entry.metric.name(), entry.mi);
    }
    println!();

    // 4. Causal analysis of the top practice (paper §5.2).
    let cfg = CausalConfig::default();
    let analysis = analyze_treatment(&table, ranking[0].metric, &cfg);
    if let Some(low) = analysis.low_bin_comparison() {
        println!(
            "causal check for {:?} at the 1:2 bins: {} matched pairs, p = {}, causal = {}",
            ranking[0].metric.name(),
            low.n_pairs,
            low.p_value().map_or("n/a".into(), |p| format!("{p:.2e}")),
            low.causal(&cfg),
        );
    }
    println!();

    // 5. Health prediction (paper §6).
    for classes in [HealthClasses::Two, HealthClasses::Five] {
        let dt = cross_validation(&table, classes, ModelKind::Dt, 7);
        let majority = cross_validation(&table, classes, ModelKind::Majority, 7);
        println!(
            "{}-class 5-fold CV: decision tree {:.1}% vs majority baseline {:.1}%",
            classes.n(),
            100.0 * dt.accuracy(),
            100.0 * majority.accuracy(),
        );
    }

    // 6. The model is interpretable: print the top of the tree.
    println!("\ndecision tree (top 2 levels):");
    println!("{}", render_tree(&table, HealthClasses::Two, ModelKind::Dt, 2));
}
