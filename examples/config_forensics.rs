//! Configuration forensics: the inference substrate on its own.
//!
//! ```text
//! cargo run --release --example config_forensics
//! ```
//!
//! Shows what the paper's §2 pipeline actually does with raw data, on one
//! device: render → archive → diff successive snapshots → type changes
//! vendor-agnostically → group into change events → classify automation —
//! including the cross-vendor quirk where the *same* semantic operation is
//! an `interface` change on one vendor and a `vlan` change on another.

use mpa::config::semantic::{AclRule, DeviceConfig};
use mpa::config::snapshot::{Login, Snapshot, SnapshotMeta, UserDirectory};
use mpa::config::{parse_config, render_config, Archive};
use mpa::metrics::{group_events, replay_device_changes};
use mpa::model::device::Dialect;
use mpa::model::{DeviceId, Timestamp};

fn snapshot(dev: u32, minute: u64, login: &str, cfg: &DeviceConfig) -> Snapshot {
    Snapshot {
        meta: SnapshotMeta {
            device: DeviceId(dev),
            time: Timestamp(minute),
            login: Login::new(login),
        },
        text: render_config(cfg),
    }
}

fn main() {
    let directory = UserDirectory::new(["svc-netauto".to_string()]);
    let mut archive = Archive::new();

    // Two devices, one per dialect, starting from the same semantic state.
    let mut cisco_like = DeviceConfig::new("net0-sw-dev0", Dialect::BlockKeyword);
    let mut junos_like = DeviceConfig::new("net0-sw-dev1", Dialect::BraceHierarchy);
    for cfg in [&mut cisco_like, &mut junos_like] {
        cfg.assign_interface_vlan(1, 10);
        cfg.assign_interface_vlan(2, 20);
        cfg.acl_add_rule("edge", AclRule { permit: true, protocol: "tcp".into(), port: 443 });
    }
    archive.push(snapshot(0, 0, "alice", &cisco_like)).unwrap();
    archive.push(snapshot(1, 0, "alice", &junos_like)).unwrap();

    println!("--- rendered block-keyword config (excerpt) ---");
    for line in render_config(&cisco_like).lines().take(12) {
        println!("{line}");
    }
    println!("--- rendered brace-hierarchy config (excerpt) ---");
    for line in render_config(&junos_like).lines().take(12) {
        println!("{line}");
    }

    // The same semantic operation on both devices, 2 minutes apart — one
    // change event per the δ=5min heuristic.
    cisco_like.assign_interface_vlan(1, 20);
    archive.push(snapshot(0, 100, "svc-netauto", &cisco_like)).unwrap();
    junos_like.assign_interface_vlan(1, 20);
    archive.push(snapshot(1, 102, "svc-netauto", &junos_like)).unwrap();

    // An unrelated manual ACL edit much later: a separate event.
    cisco_like.acl_add_rule("edge", AclRule { permit: false, protocol: "udp".into(), port: 53 });
    archive.push(snapshot(0, 500, "bob", &cisco_like)).unwrap();

    // Inference: replay the archive.
    let mut changes = Vec::new();
    changes.extend(replay_device_changes(&archive, DeviceId(0), Dialect::BlockKeyword, &directory));
    changes.extend(replay_device_changes(&archive, DeviceId(1), Dialect::BraceHierarchy, &directory));

    println!("\n--- inferred device changes ---");
    for c in &changes {
        println!(
            "t+{:<4} {}  types={:?}  automated={}",
            c.time.0,
            c.device,
            c.types.iter().map(|t| t.label()).collect::<Vec<_>>(),
            c.automated,
        );
    }
    println!("\nnote the cross-vendor quirk (paper §2.2): the SAME operation — move port 1");
    println!("to VLAN 20 — is typed `iface` on the block-keyword device but `vlan` on the");
    println!("brace-hierarchy device, because a different stanza changed on the wire.");

    let events = group_events(&changes, 5);
    println!("\n--- change events (δ = 5 min) ---");
    for (i, e) in events.iter().enumerate() {
        println!(
            "event {}: {} devices, types {:?}, fully automated: {}",
            i + 1,
            e.n_devices(),
            e.types.iter().map(|t| t.label()).collect::<Vec<_>>(),
            e.automated,
        );
    }

    // And the structural facts the design metrics are built from.
    let text = render_config(&cisco_like);
    let parsed = parse_config(&text, Dialect::BlockKeyword).unwrap();
    let facts = mpa::config::facts::extract_facts(&parsed);
    println!(
        "\n--- extracted facts (block-keyword device) ---\n\
         interfaces: {}  vlans: {:?}  acl rules: {}  intra-device refs: {}",
        facts.iface_count, facts.vlan_ids, facts.acl_rule_count, facts.intra_refs
    );
}
