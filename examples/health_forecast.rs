//! Health forecasting: the paper's online-prediction workflow (§6.2) plus a
//! what-if analysis.
//!
//! ```text
//! cargo run --release --example health_forecast
//! ```
//!
//! Trains a model on months `t−M .. t−1` and predicts month `t` for every
//! viable `t`, sweeping the history length M (the paper's Table 9). Then
//! demonstrates what-if analysis: take an unhealthy-predicted case, reduce
//! its change-event bin, and ask the model again — "will combining
//! configuration changes into fewer, larger changes improve network
//! health?" (§6).

use mpa::learn::Classifier;
use mpa::prelude::*;

fn main() {
    let dataset = Scenario::medium().generate();
    let table = infer_case_table(&dataset);

    println!("online prediction accuracy (train on t-M..t-1, predict month t):");
    println!("{:>4} {:>10} {:>10}", "M", "2-class", "5-class");
    for m in [1usize, 3, 6, 9] {
        if m >= dataset.period.n_months() {
            continue;
        }
        let (acc2, _) = online_accuracy(&table, HealthClasses::Two, ModelKind::Dt, m);
        let (acc5, _) = online_accuracy(&table, HealthClasses::Five, ModelKind::DtAbOs, m);
        println!("{m:>4} {:>9.1}% {:>9.1}%", 100.0 * acc2, 100.0 * acc5);
    }

    // What-if analysis: train a 2-class model on everything, then probe it.
    let set = build_learnset(&table, HealthClasses::Two);
    let model = mpa::analytics::predict::train(ModelKind::Dt, &set, HealthClasses::Two);

    let events_col = Metric::ChangeEvents.index();
    let mut flipped = 0;
    let mut unhealthy = 0;
    for inst in set.instances() {
        if model.predict(&inst.features) != 1 {
            continue; // only look at unhealthy-predicted cases
        }
        unhealthy += 1;
        if inst.features[events_col] == 0 {
            continue; // already at the lowest change-event bin
        }
        let mut probe = inst.features.clone();
        probe[events_col] = 0; // what if changes were batched way down?
        if model.predict(&probe) == 0 {
            flipped += 1;
        }
    }
    println!(
        "\nwhat-if: of {unhealthy} unhealthy-predicted cases, {flipped} flip to healthy when\n\
         change events drop to the lowest bin — the §6 question (\"will combining\n\
         configuration changes into fewer, larger changes improve network health?\")\n\
         answered per-network instead of by gut feeling."
    );
}
