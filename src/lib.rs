//! # MPA — Management Plane Analytics
//!
//! A production-quality Rust reproduction of *Management Plane Analytics*
//! (Gember-Jacobson, Wu, Li, Akella, Mahajan — IMC 2015): infer network
//! management practices from inventory records, configuration snapshots and
//! trouble tickets; discover which practices are statistically and causally
//! related to network health; and predict health from practices.
//!
//! This crate is the facade over the workspace:
//!
//! | module | crate | what it provides |
//! |---|---|---|
//! | [`model`] | `mpa-model` | devices, networks, topology, tickets, time |
//! | [`config`] | `mpa-config` | config languages, snapshots, stanza diffs |
//! | [`synth`] | `mpa-synth` | the synthetic OSP substrate + ground truth |
//! | [`metrics`] | `mpa-metrics` | the 28 practice metrics, case table |
//! | [`stats`] | `mpa-stats` | MI/CMI, logistic, sign test, balance, ... |
//! | [`learn`] | `mpa-learn` | C4.5, AdaBoost, oversampling, forests, SVM |
//! | [`analytics`] | `mpa-core` | dependence, causal QED, prediction |
//!
//! ## Quickstart
//!
//! ```no_run
//! use mpa::prelude::*;
//!
//! // 1. A dataset: generate a synthetic organization (or load your own).
//! let dataset = Scenario::small().generate();
//!
//! // 2. Infer the case table: 28 practice metrics + health per
//! //    (network, month), from raw snapshots/inventory/tickets only.
//! let table = infer_case_table(&dataset);
//!
//! // 3. Which practices relate to health?
//! let ranking = mi_ranking(&table, 30);
//! println!("strongest practice: {}", ranking[0].metric.name());
//!
//! // 4. Does the top practice *cause* poor health?
//! let causal = analyze_treatment(&table, ranking[0].metric, &CausalConfig::default());
//! if let Some(low) = causal.low_bin_comparison() {
//!     println!("1:2 comparison p-value: {:?}", low.p_value());
//! }
//!
//! // 5. Predict health from practices.
//! let accuracy = cross_validation(&table, HealthClasses::Two, ModelKind::Dt, 7).accuracy();
//! println!("2-class CV accuracy: {accuracy:.3}");
//! ```
//!
//! See the `examples/` directory for complete scenarios and DESIGN.md for
//! the system inventory and per-experiment index.

/// Domain model: devices, networks, topology, tickets, time.
pub use mpa_model as model;

/// Configuration substrate: dialects, snapshots, diffs, facts.
pub use mpa_config as config;

/// Synthetic-organization substrate and ground truth.
pub use mpa_synth as synth;

/// Practice-metric inference.
pub use mpa_metrics as metrics;

/// Statistics substrate.
pub use mpa_stats as stats;

/// Learning substrate.
pub use mpa_learn as learn;

/// The MPA analytics (dependence, causal, prediction, comparison).
pub use mpa_core as analytics;

/// The common imports for working with MPA end to end.
pub mod prelude {
    pub use mpa_core::predict::{
        build_learnset, class_distribution, cross_validation, online_accuracy, render_tree,
        HealthClasses, ModelKind,
    };
    pub use mpa_core::{
        analyze_treatment, cmi_ranking, compare_survey, mi_ranking, CausalAnalysis, CausalConfig,
        TextTable,
    };
    pub use mpa_metrics::{infer, infer_case_table, infer_with_mode, CaseTable, InferMode, Metric};
    pub use mpa_model::{Network, NetworkId, Ticket};
    pub use mpa_synth::{Dataset, GenMode, Scenario};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        // Type-level smoke test: names resolve and basic values construct.
        let cfg = CausalConfig::default();
        assert!(cfg.alpha < 0.01);
        assert_eq!(Metric::ALL.len(), 28);
        assert_eq!(HealthClasses::Five.n(), 5);
    }
}
